// End-to-end tests of the fault-tolerant sorting algorithm: every fault
// configuration on small cubes, random configurations on larger ones, both
// exchange protocols, both fault models, adversarial key patterns.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/ft_sorter.hpp"
#include "fault/scenario.hpp"
#include "sort/distribution.hpp"
#include "util/rng.hpp"

namespace ftsort {
namespace {

using core::FaultTolerantSorter;
using core::SortConfig;
using sort::ExchangeProtocol;
using sort::Key;

std::vector<Key> sorted_copy(std::vector<Key> keys) {
  std::sort(keys.begin(), keys.end());
  return keys;
}

void expect_sorts(cube::Dim n, const fault::FaultSet& faults,
                  const std::vector<Key>& keys, SortConfig config = {}) {
  FaultTolerantSorter sorter(n, faults, config);
  const auto outcome = sorter.sort(keys);
  ASSERT_EQ(outcome.sorted.size(), keys.size())
      << "keys lost or duplicated; " << sorter.plan().to_string();
  EXPECT_EQ(outcome.sorted, sorted_copy(keys))
      << sorter.plan().to_string();
}

TEST(FtSortIntegration, FaultFreeCubeSortsUniformKeys) {
  util::Rng rng(1);
  for (cube::Dim n = 0; n <= 5; ++n) {
    const auto keys = sort::gen_uniform(100, rng);
    expect_sorts(n, fault::FaultSet(n), keys);
  }
}

TEST(FtSortIntegration, SingleFaultEveryLocation) {
  util::Rng rng(2);
  for (cube::Dim n = 2; n <= 4; ++n) {
    const auto keys = sort::gen_uniform(75, rng);
    for (cube::NodeId f = 0; f < cube::num_nodes(n); ++f)
      expect_sorts(n, fault::FaultSet(n, {f}), keys);
  }
}

TEST(FtSortIntegration, TwoFaultsEveryPairOnQ3) {
  util::Rng rng(3);
  const auto keys = sort::gen_uniform(64, rng);
  for (cube::NodeId a = 0; a < 8; ++a)
    for (cube::NodeId b = a + 1; b < 8; ++b)
      expect_sorts(3, fault::FaultSet(3, {a, b}), keys);
}

TEST(FtSortIntegration, UpToThreeFaultsRandomOnQ4) {
  util::Rng rng(4);
  for (int trial = 0; trial < 30; ++trial) {
    for (std::size_t r = 1; r <= 3; ++r) {
      const auto faults = fault::random_faults(4, r, rng);
      const auto keys = sort::gen_uniform(120, rng);
      expect_sorts(4, faults, keys);
    }
  }
}

TEST(FtSortIntegration, ManyFaultsOnQ6) {
  util::Rng rng(5);
  for (std::size_t r = 1; r <= 5; ++r) {
    const auto faults = fault::random_faults(6, r, rng);
    const auto keys = sort::gen_uniform(400, rng);
    expect_sorts(6, faults, keys);
  }
}

TEST(FtSortIntegration, FullExchangeProtocolAgrees) {
  util::Rng rng(6);
  SortConfig full;
  full.protocol = ExchangeProtocol::FullExchange;
  for (int trial = 0; trial < 10; ++trial) {
    const auto faults = fault::random_faults(5, 3, rng);
    const auto keys = sort::gen_uniform(150, rng);
    expect_sorts(5, faults, keys, full);
  }
}

TEST(FtSortIntegration, Step8FullSortModeAgrees) {
  // The literal-paper Step 8 (full re-sort) and the merge optimisation
  // must both sort; exhaustive over fault pairs on Q_3 and random beyond.
  util::Rng rng(77);
  SortConfig full_sort;
  full_sort.step8 = core::Step8Mode::FullSort;
  const auto keys = sort::gen_uniform(88, rng);
  for (cube::NodeId a = 0; a < 8; ++a)
    for (cube::NodeId b = a + 1; b < 8; ++b)
      expect_sorts(3, fault::FaultSet(3, {a, b}), keys, full_sort);
  for (int trial = 0; trial < 20; ++trial) {
    const auto faults = fault::random_faults(6, 5, rng);
    expect_sorts(6, faults, sort::gen_uniform(333, rng), full_sort);
  }
}

TEST(FtSortIntegration, Step8MergeModeExhaustiveSmallCubes) {
  // The merge optimisation leans on the post-split content being
  // blockwise bitonic *with the dead hole at logical 0*; hammer it over
  // every fault pair/triple on Q_3/Q_4 and adversarial key patterns.
  util::Rng rng(78);
  SortConfig merge;
  merge.step8 = core::Step8Mode::BitonicMerge;
  for (cube::NodeId a = 0; a < 8; ++a)
    for (cube::NodeId b = a + 1; b < 8; ++b) {
      expect_sorts(3, fault::FaultSet(3, {a, b}),
                   sort::gen_uniform(50, rng), merge);
      expect_sorts(3, fault::FaultSet(3, {a, b}),
                   sort::gen_few_distinct(50, 3, rng), merge);
    }
  for (int trial = 0; trial < 60; ++trial) {
    const auto faults = fault::random_faults(4, 3, rng);
    expect_sorts(4, faults, sort::gen_uniform(97, rng), merge);
  }
}

TEST(FtSortIntegration, Step8MergeModeIsFaster) {
  util::Rng rng(79);
  const auto faults = fault::random_faults(6, 5, rng);
  const auto keys = sort::gen_uniform(10'000, rng);
  SortConfig merge;
  merge.step8 = core::Step8Mode::BitonicMerge;
  SortConfig full_sort;
  full_sort.step8 = core::Step8Mode::FullSort;
  const auto fast = FaultTolerantSorter(6, faults, merge).sort(keys);
  const auto slow = FaultTolerantSorter(6, faults, full_sort).sort(keys);
  EXPECT_EQ(fast.sorted, slow.sorted);
  EXPECT_LT(fast.report.makespan, slow.report.makespan);
}

TEST(FtSortIntegration, PaperExample1Configuration) {
  // Q_5 with faults {3, 5, 16, 24}: mincut 3, 47 keys as in Fig. 6.
  util::Rng rng(7);
  const fault::FaultSet faults(5, {3, 5, 16, 24});
  const auto keys = sort::gen_uniform(47, rng);
  expect_sorts(5, faults, keys);
}

}  // namespace
}  // namespace ftsort
