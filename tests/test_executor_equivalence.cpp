// Randomized equivalence sweep: the sequential scheduler and the
// thread-per-node MIMD executor must produce byte-identical RunReports —
// makespan, traffic, per-node clocks — for the same program, including runs
// where the fault injector kills processors mid-sort and the online
// recovery protocol renegotiates. The logical clocks depend only on message
// causality, never on host scheduling; this sweep is the evidence.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/ft_sorter.hpp"
#include "sort/distribution.hpp"
#include "util/rng.hpp"

namespace ftsort {
namespace {

struct Shape {
  const char* name;
  cube::Dim n;
  std::vector<cube::NodeId> static_faults;
  std::size_t keys;
};

const Shape kShapes[] = {
    {"q3_fault_free", 3, {}, 220},
    {"q3_one_fault", 3, {5}, 200},
    {"q4_two_faults", 4, {3, 12}, 340},
};

/// Outcome of one run, flattened for equality comparison. A degraded run
/// records the diagnostic instead of the report.
struct Result {
  bool degraded = false;
  std::string degrade_reason;
  std::vector<sort::Key> sorted;
  sim::RunReport report;
};

Result run_once(const Shape& shape, const std::vector<sort::Key>& keys,
                const sim::FaultInjector& injector, core::Executor exec) {
  core::SortConfig cfg;
  cfg.online_recovery = true;
  cfg.executor = exec;
  cfg.injector = injector;
  // Per-node, per-phase counters are charged from message causality only,
  // so the whole snapshot must match across executors too (compared in
  // expect_identical).
  cfg.record_metrics = true;
  // Same discipline for the per-link traffic matrix: integer counters
  // summed commutatively, so the snapshot is byte-identical too.
  cfg.record_link_stats = true;
  core::FaultTolerantSorter sorter(
      shape.n, fault::FaultSet(shape.n, shape.static_faults), cfg);
  Result r;
  try {
    auto out = sorter.sort(keys);
    r.sorted = std::move(out.sorted);
    r.report = std::move(out.report);
  } catch (const core::DegradationError& e) {
    r.degraded = true;
    r.degrade_reason = e.what();
  }
  return r;
}

void expect_identical(const Result& a, const Result& b,
                      const std::string& label) {
  ASSERT_EQ(a.degraded, b.degraded) << label;
  if (a.degraded) {
    EXPECT_EQ(a.degrade_reason, b.degrade_reason) << label;
    return;
  }
  EXPECT_EQ(a.sorted, b.sorted) << label;
  EXPECT_DOUBLE_EQ(a.report.makespan, b.report.makespan) << label;
  EXPECT_EQ(a.report.messages, b.report.messages) << label;
  EXPECT_EQ(a.report.keys_sent, b.report.keys_sent) << label;
  EXPECT_EQ(a.report.key_hops, b.report.key_hops) << label;
  EXPECT_EQ(a.report.comparisons, b.report.comparisons) << label;
  EXPECT_EQ(a.report.messages_dropped, b.report.messages_dropped) << label;
  EXPECT_EQ(a.report.timeouts, b.report.timeouts) << label;
  EXPECT_EQ(a.report.node_clocks, b.report.node_clocks) << label;
  EXPECT_EQ(a.report.killed_nodes, b.report.killed_nodes) << label;
  EXPECT_TRUE(a.report.metrics == b.report.metrics) << label;
  EXPECT_TRUE(a.report.phases == b.report.phases) << label;
  EXPECT_TRUE(a.report.links == b.report.links) << label;
  EXPECT_TRUE(a.report.reindex_audit == b.report.reindex_audit) << label;
  // Conservation must hold on every swept run: the traffic matrix's total
  // key-hops is exactly the aggregate scalar (drops included on both
  // sides).
  EXPECT_EQ(a.report.links.grand_total().key_hops, a.report.key_hops)
      << label;
}

class ExecutorEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ExecutorEquivalence, InjectedFaultRunsMatchByteForByte) {
  const Shape& shape = kShapes[GetParam()];
  // Baseline makespan of the fault-free-injection run, used to place kill
  // times somewhere meaningful.
  util::Rng seed_rng(0xabcdef);
  const auto probe_keys = sort::gen_uniform(shape.keys, seed_rng);
  const Result probe = run_once(shape, probe_keys, {},
                                core::Executor::Sequential);
  ASSERT_FALSE(probe.degraded);
  const sim::SimTime t0 = probe.report.makespan;

  for (std::uint64_t seed = 1; seed <= 55; ++seed) {
    util::Rng rng(seed * 1000003 + GetParam());
    const auto keys = sort::gen_uniform(shape.keys, rng);

    sim::FaultInjector injector;
    // Half the seeds run fault-free; the rest kill 1-2 random healthy
    // nodes (possibly the coordinator — the degrade paths must agree too).
    if (seed % 2 == 0) {
      const int kills = 1 + static_cast<int>(rng.below(2));
      for (int k = 0; k < kills; ++k) {
        cube::NodeId victim;
        do {
          victim =
              static_cast<cube::NodeId>(rng.below(cube::num_nodes(shape.n)));
        } while (fault::FaultSet(shape.n, shape.static_faults)
                     .is_faulty(victim));
        injector.kill_node_at(victim, (0.05 + 0.9 * rng.uniform01()) * t0);
      }
    }

    const Result seq =
        run_once(shape, keys, injector, core::Executor::Sequential);
    const Result thr =
        run_once(shape, keys, injector, core::Executor::Threaded);
    expect_identical(seq, thr,
                     std::string(shape.name) + " seed " +
                         std::to_string(seed));
  }
}

INSTANTIATE_TEST_SUITE_P(AllShapes, ExecutorEquivalence,
                         ::testing::Values(std::size_t{0}, std::size_t{1},
                                           std::size_t{2}),
                         [](const auto& param_info) {
                           return kShapes[param_info.param].name;
                         });

// The coalescing rewrite (CoalescePolicy::Auto under cut-through routing)
// must preserve executor equivalence: fewer, larger messages through the
// same pool, byte-identical reports across schedulers.
TEST(ExecutorEquivalence, CoalescedCutThroughRunsMatchByteForByte) {
  const Shape& shape = kShapes[2];  // q4_two_faults
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    util::Rng rng(seed * 7919);
    const auto keys = sort::gen_uniform(shape.keys, rng);
    Result results[2];
    for (const auto exec :
         {core::Executor::Sequential, core::Executor::Threaded}) {
      core::SortConfig cfg;
      cfg.executor = exec;
      cfg.cost = sim::CostModel::wormhole();
      cfg.protocol = sort::ExchangeProtocol::HalfExchange;
      cfg.coalesce = sort::CoalescePolicy::Auto;
      cfg.record_metrics = true;
      cfg.record_link_stats = true;
      core::FaultTolerantSorter sorter(
          shape.n, fault::FaultSet(shape.n, shape.static_faults), cfg);
      auto out = sorter.sort(keys);
      Result& r = results[exec == core::Executor::Threaded ? 1 : 0];
      r.sorted = std::move(out.sorted);
      r.report = std::move(out.report);
    }
    expect_identical(results[0], results[1],
                     "coalesced seed " + std::to_string(seed));
  }
}

// Forcing the rewrite under the default store-and-forward model must give
// exactly the run a FullExchange configuration would have produced — the
// rewrite is a config-time substitution, not a new protocol.
TEST(ExecutorEquivalence, ForcedCoalescingEqualsConfiguredFullExchange) {
  util::Rng rng(4242);
  const auto keys = sort::gen_uniform(300, rng);
  core::SortConfig coalesced;
  coalesced.protocol = sort::ExchangeProtocol::HalfExchange;
  coalesced.coalesce = sort::CoalescePolicy::On;
  core::SortConfig full;
  full.protocol = sort::ExchangeProtocol::FullExchange;
  full.coalesce = sort::CoalescePolicy::Off;
  const fault::FaultSet faults(4, {3, 12});
  const auto a =
      core::FaultTolerantSorter(4, faults, coalesced).sort(keys);
  const auto b = core::FaultTolerantSorter(4, faults, full).sort(keys);
  EXPECT_EQ(a.sorted, b.sorted);
  EXPECT_DOUBLE_EQ(a.report.makespan, b.report.makespan);
  EXPECT_EQ(a.report.messages, b.report.messages);
  EXPECT_EQ(a.report.keys_sent, b.report.keys_sent);
  EXPECT_EQ(a.report.comparisons, b.report.comparisons);
  EXPECT_EQ(a.report.node_clocks, b.report.node_clocks);
}

// Offline (non-recovery) sorts must stay equivalent as well — the injector
// rewrite must not disturb the fault-free fast path.
TEST(ExecutorEquivalence, OfflineSortsMatchAcrossExecutors) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    util::Rng rng(seed);
    const auto keys = sort::gen_uniform(150, rng);
    core::SortConfig seq_cfg;
    core::SortConfig thr_cfg;
    thr_cfg.executor = core::Executor::Threaded;
    core::FaultTolerantSorter a(3, fault::FaultSet(3, {2}), seq_cfg);
    core::FaultTolerantSorter b(3, fault::FaultSet(3, {2}), thr_cfg);
    const auto ra = a.sort(keys);
    const auto rb = b.sort(keys);
    EXPECT_EQ(ra.sorted, rb.sorted);
    EXPECT_DOUBLE_EQ(ra.report.makespan, rb.report.makespan);
    EXPECT_EQ(ra.report.messages, rb.report.messages);
    EXPECT_EQ(ra.report.node_clocks, rb.report.node_clocks);
  }
}

}  // namespace
}  // namespace ftsort
