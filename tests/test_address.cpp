// Unit tests for hypercube address algebra.
#include <gtest/gtest.h>

#include "hypercube/address.hpp"

namespace ftsort::cube {
namespace {

TEST(Address, NumNodesIsPowerOfTwo) {
  EXPECT_EQ(num_nodes(0), 1u);
  EXPECT_EQ(num_nodes(1), 2u);
  EXPECT_EQ(num_nodes(6), 64u);
  EXPECT_EQ(num_nodes(10), 1024u);
}

TEST(Address, ValidityChecks) {
  EXPECT_TRUE(valid_dim(0));
  EXPECT_TRUE(valid_dim(kMaxDim));
  EXPECT_FALSE(valid_dim(-1));
  EXPECT_FALSE(valid_dim(kMaxDim + 1));
  EXPECT_TRUE(valid_node(63, 6));
  EXPECT_FALSE(valid_node(64, 6));
}

TEST(Address, BitExtraction) {
  const NodeId u = 0b101101;
  EXPECT_EQ(bit(u, 0), 1);
  EXPECT_EQ(bit(u, 1), 0);
  EXPECT_EQ(bit(u, 2), 1);
  EXPECT_EQ(bit(u, 3), 1);
  EXPECT_EQ(bit(u, 4), 0);
  EXPECT_EQ(bit(u, 5), 1);
}

TEST(Address, NeighborFlipsExactlyOneBit) {
  for (Dim n = 1; n <= 6; ++n)
    for (NodeId u = 0; u < num_nodes(n); ++u)
      for (Dim d = 0; d < n; ++d) {
        const NodeId v = neighbor(u, d);
        EXPECT_EQ(hamming(u, v), 1);
        EXPECT_EQ(neighbor(v, d), u);  // involution
      }
}

TEST(Address, WithBitSetsAndClears) {
  EXPECT_EQ(with_bit(0b000, 1, 1), 0b010u);
  EXPECT_EQ(with_bit(0b111, 1, 0), 0b101u);
  EXPECT_EQ(with_bit(0b010, 1, 1), 0b010u);  // idempotent
}

TEST(Address, HammingDistanceProperties) {
  EXPECT_EQ(hamming(0, 0), 0);
  EXPECT_EQ(hamming(0b1010, 0b0101), 4);
  EXPECT_EQ(hamming(5, 5), 0);
  // Symmetry and triangle inequality on a sample.
  for (NodeId a = 0; a < 16; ++a)
    for (NodeId b = 0; b < 16; ++b) {
      EXPECT_EQ(hamming(a, b), hamming(b, a));
      for (NodeId c = 0; c < 16; ++c)
        EXPECT_LE(hamming(a, c), hamming(a, b) + hamming(b, c));
    }
}

TEST(Address, WeightCountsBits) {
  EXPECT_EQ(weight(0), 0);
  EXPECT_EQ(weight(0b1011), 3);
}

TEST(Address, LowestSetDim) {
  EXPECT_EQ(lowest_set_dim(0b100), 2);
  EXPECT_EQ(lowest_set_dim(0b101), 0);
}

TEST(Address, GrayCodeAdjacency) {
  // Successive Gray codes differ in exactly one bit: a Hamiltonian path.
  for (NodeId i = 0; i + 1 < 64; ++i)
    EXPECT_EQ(hamming(gray(i), gray(i + 1)), 1);
}

TEST(Address, GrayCodeInverseRoundTrips) {
  for (NodeId i = 0; i < 256; ++i) {
    EXPECT_EQ(gray_inverse(gray(i)), i);
    EXPECT_EQ(gray(gray_inverse(i)), i);
  }
}

TEST(Address, GrayCodeIsPermutation) {
  std::vector<bool> seen(64, false);
  for (NodeId i = 0; i < 64; ++i) {
    const NodeId g = gray(i) & 63u;
    EXPECT_FALSE(seen[g]);
    seen[g] = true;
  }
}

}  // namespace
}  // namespace ftsort::cube
