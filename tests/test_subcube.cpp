// Unit tests for subcube descriptors and the cutting-dimension split.
#include <gtest/gtest.h>

#include <set>

#include "hypercube/subcube.hpp"

namespace ftsort::cube {
namespace {

TEST(Subcube, MembershipAndSize) {
  // In Q_4, fix bit 1 = 1: a 3-dimensional subcube of 8 nodes.
  const Subcube sc{4, 0b0010, 0b0010};
  EXPECT_EQ(sc.dim(), 3);
  EXPECT_EQ(sc.size(), 8u);
  EXPECT_TRUE(sc.contains(0b0010));
  EXPECT_TRUE(sc.contains(0b1111));
  EXPECT_FALSE(sc.contains(0b0000));
  EXPECT_EQ(sc.members().size(), 8u);
  for (NodeId u : sc.members()) EXPECT_TRUE(sc.contains(u));
}

TEST(Subcube, WholeCubeIsImproperSubcube) {
  const Subcube whole{3, 0, 0};
  EXPECT_EQ(whole.dim(), 3);
  EXPECT_EQ(whole.members().size(), 8u);
}

TEST(Subcube, SingleNodeSubcube) {
  const Subcube point{3, 0b111, 0b101};
  EXPECT_EQ(point.dim(), 0);
  ASSERT_EQ(point.members().size(), 1u);
  EXPECT_EQ(point.members()[0], 0b101u);
}

TEST(AllSubcubes, CountsMatchCombinatorics) {
  // C(n, f) * 2^f subcubes with f fixed dimensions.
  EXPECT_EQ(all_subcubes(4, 4).size(), 1u);        // the whole cube
  EXPECT_EQ(all_subcubes(4, 3).size(), 8u);        // C(4,1)*2
  EXPECT_EQ(all_subcubes(4, 2).size(), 24u);       // C(4,2)*4
  EXPECT_EQ(all_subcubes(4, 0).size(), 16u);       // all nodes
}

TEST(AllSubcubes, MembersPartitionForFixedMask) {
  // Subcubes sharing a mask partition the cube.
  const auto subs = all_subcubes(4, 2);
  std::map<NodeId, std::set<NodeId>> members_by_mask;
  for (const auto& sc : subs)
    for (NodeId u : sc.members()) {
      auto [it, inserted] = members_by_mask[sc.mask].insert(u);
      EXPECT_TRUE(inserted) << "node " << u << " duplicated in mask "
                            << sc.mask;
    }
  for (const auto& [mask, members] : members_by_mask)
    EXPECT_EQ(members.size(), 16u);
}

TEST(CutSplit, PaperExampleAddressFactorisation) {
  // §3: Q_5 cut along D = (0, 1, 3): v = {u3 u1 u0}, w = {u4 u2}.
  const CutSplit split(5, {0, 1, 3});
  EXPECT_EQ(split.subcube_bits(), 3);
  EXPECT_EQ(split.local_bits(), 2);
  EXPECT_EQ(split.num_subcubes(), 8u);
  EXPECT_EQ(split.subcube_size(), 4u);
  ASSERT_EQ(split.local_dims().size(), 2u);
  EXPECT_EQ(split.local_dims()[0], 2);
  EXPECT_EQ(split.local_dims()[1], 4);

  // Fault addresses from Example 1 and their (v, w) from Example 2.
  EXPECT_EQ(split.subcube_index(3), 0b011u);   // FP1 = 00011
  EXPECT_EQ(split.local_address(3), 0b00u);
  EXPECT_EQ(split.subcube_index(5), 0b001u);   // FP2 = 00101
  EXPECT_EQ(split.local_address(5), 0b01u);
  EXPECT_EQ(split.subcube_index(16), 0b000u);  // FP3 = 10000
  EXPECT_EQ(split.local_address(16), 0b10u);
  EXPECT_EQ(split.subcube_index(24), 0b100u);  // FP4 = 11000
  EXPECT_EQ(split.local_address(24), 0b10u);
}

TEST(CutSplit, GlobalAddressRoundTrips) {
  const CutSplit split(6, {1, 4});
  for (NodeId u = 0; u < 64; ++u) {
    const NodeId v = split.subcube_index(u);
    const NodeId w = split.local_address(u);
    EXPECT_EQ(split.global_address(v, w), u);
  }
}

TEST(CutSplit, SubcubeDescriptorMatchesIndex) {
  const CutSplit split(5, {0, 2});
  for (NodeId v = 0; v < split.num_subcubes(); ++v) {
    const Subcube sc = split.subcube(v);
    EXPECT_EQ(sc.size(), split.subcube_size());
    for (NodeId u : sc.members()) EXPECT_EQ(split.subcube_index(u), v);
  }
}

TEST(CutSplit, EmptyCutIsWholeCube) {
  const CutSplit split(4, {});
  EXPECT_EQ(split.num_subcubes(), 1u);
  EXPECT_EQ(split.subcube_size(), 16u);
  for (NodeId u = 0; u < 16; ++u) {
    EXPECT_EQ(split.subcube_index(u), 0u);
    EXPECT_EQ(split.local_address(u), u);
  }
}

TEST(CutSplit, FullCutIsPointSubcubes) {
  const CutSplit split(3, {0, 1, 2});
  EXPECT_EQ(split.num_subcubes(), 8u);
  EXPECT_EQ(split.subcube_size(), 1u);
}

TEST(CutSplit, RejectsDuplicateCut) {
  EXPECT_THROW(CutSplit(4, {1, 1}), ContractViolation);
}

TEST(CutSplit, RejectsOutOfRangeCut) {
  EXPECT_THROW(CutSplit(4, {4}), ContractViolation);
  EXPECT_THROW(CutSplit(4, {-1}), ContractViolation);
}

TEST(CutSplit, CutOrderDefinesVBits) {
  // v bit i corresponds to cut d_{i+1}; order matters for addressing.
  const CutSplit a(4, {0, 2});
  const CutSplit b(4, {2, 0});
  const NodeId u = 0b0100;  // bit2 = 1, bit0 = 0
  EXPECT_EQ(a.subcube_index(u), 0b10u);
  EXPECT_EQ(b.subcube_index(u), 0b01u);
}

}  // namespace
}  // namespace ftsort::cube
