// Coverage for the event trace, machine edge cases, and the
// exchange_merge_split primitive against its pure-kernel reference.
#include <gtest/gtest.h>

#include <algorithm>

#include "sim/machine.hpp"
#include "sort/distribution.hpp"
#include "sort/merge_split.hpp"
#include "sort/spmd_bitonic.hpp"
#include "util/rng.hpp"

namespace ftsort {
namespace {

using sort::Key;

TEST(Trace, DisabledByDefaultRecordsNothing) {
  sim::Trace trace;
  trace.record({1.0, 0, sim::EventKind::Send, 1, 0, 5, 1});
  EXPECT_TRUE(trace.snapshot().empty());
}

TEST(Trace, ToStringTruncates) {
  sim::Trace trace;
  trace.enable();
  for (int i = 0; i < 50; ++i)
    trace.record({static_cast<double>(i), 0, sim::EventKind::Compute, 0, 0,
                  1, 0});
  const std::string out = trace.to_string(10);
  EXPECT_NE(out.find("40 more events"), std::string::npos);
}

TEST(Trace, ClearDropsEvents) {
  sim::Trace trace;
  trace.enable();
  trace.record({0.0, 0, sim::EventKind::Compute, 0, 0, 1, 0});
  trace.clear();
  EXPECT_TRUE(trace.snapshot().empty());
}

TEST(MachineEdge, RecvFromFaultySourceIsRejected) {
  sim::Machine machine(2, fault::FaultSet(2, {1}));
  const auto program = [](sim::NodeCtx& ctx) -> sim::Task<void> {
    if (ctx.id() == 0) {
      sim::Message m = co_await ctx.recv(1, 0);  // 1 is faulty
      (void)m;
    }
  };
  EXPECT_THROW(machine.run(program), std::runtime_error);
}

TEST(MachineEdge, ZeroComparisonsChargeIsFree) {
  sim::Machine machine(0, fault::FaultSet(0));
  machine.trace().enable();
  const auto program = [](sim::NodeCtx& ctx) -> sim::Task<void> {
    ctx.charge_compares(0);
    co_return;
  };
  const auto report = machine.run(program);
  EXPECT_EQ(report.comparisons, 0u);
  EXPECT_DOUBLE_EQ(report.makespan, 0.0);
  EXPECT_TRUE(machine.trace().snapshot().empty());
}

TEST(MachineEdge, FaultyNodesReportZeroClock) {
  sim::Machine machine(2, fault::FaultSet(2, {2}));
  const auto program = [](sim::NodeCtx& ctx) -> sim::Task<void> {
    ctx.charge_compares(5);
    co_return;
  };
  const auto report = machine.run(program);
  EXPECT_DOUBLE_EQ(report.node_clocks[2], 0.0);
  EXPECT_GT(report.node_clocks[0], 0.0);
}

TEST(MachineEdge, EmptyPayloadMessagesWork) {
  sim::Machine machine(1, fault::FaultSet(1));
  bool received = false;
  const auto program = [&](sim::NodeCtx& ctx) -> sim::Task<void> {
    if (ctx.id() == 0) {
      ctx.send(1, 0, std::vector<Key>{});
    } else {
      sim::Message m = co_await ctx.recv(0, 0);
      received = m.payload.empty();
    }
  };
  const auto report = machine.run(program);
  EXPECT_TRUE(received);
  EXPECT_EQ(report.keys_sent, 0u);
  EXPECT_DOUBLE_EQ(report.makespan, 0.0);  // zero keys, zero startup
}

/// Run exchange_merge_split on a 1-cube and return both sides' blocks.
std::pair<std::vector<Key>, std::vector<Key>> run_exchange(
    std::vector<Key> a, std::vector<Key> b,
    sort::ExchangeProtocol protocol) {
  sim::Machine machine(1, fault::FaultSet(1));
  std::vector<Key> out0;
  std::vector<Key> out1;
  const auto program = [&](sim::NodeCtx& ctx) -> sim::Task<void> {
    if (ctx.id() == 0) {
      out0 = co_await sort::exchange_merge_split(
          ctx, 1, 0, a, sort::SplitHalf::Lower, protocol);
    } else {
      out1 = co_await sort::exchange_merge_split(
          ctx, 0, 0, b, sort::SplitHalf::Upper, protocol);
    }
  };
  machine.run(program);
  return {out0, out1};
}

TEST(Exchange, MatchesPureKernelReference) {
  util::Rng rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t size = 1 + rng.below(30);
    auto a = sort::gen_uniform(size, rng);
    auto b = sort::gen_uniform(size, rng);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    std::uint64_t comparisons = 0;
    const auto expect_lower =
        sort::merge_split_full(a, b, sort::SplitHalf::Lower, comparisons);
    const auto expect_upper =
        sort::merge_split_full(b, a, sort::SplitHalf::Upper, comparisons);
    for (const auto protocol : {sort::ExchangeProtocol::HalfExchange,
                                sort::ExchangeProtocol::FullExchange}) {
      const auto [lower, upper] = run_exchange(a, b, protocol);
      EXPECT_EQ(lower, expect_lower);
      EXPECT_EQ(upper, expect_upper);
    }
  }
}

TEST(Exchange, SingleKeyBlocks) {
  const auto [lower, upper] =
      run_exchange({9}, {3}, sort::ExchangeProtocol::HalfExchange);
  EXPECT_EQ(lower, (std::vector<Key>{3}));
  EXPECT_EQ(upper, (std::vector<Key>{9}));
}

TEST(Exchange, AllTies) {
  const auto [lower, upper] = run_exchange(
      {5, 5, 5}, {5, 5, 5}, sort::ExchangeProtocol::HalfExchange);
  EXPECT_EQ(lower, (std::vector<Key>{5, 5, 5}));
  EXPECT_EQ(upper, (std::vector<Key>{5, 5, 5}));
}

TEST(Exchange, DummyPaddedBlocks) {
  const auto [lower, upper] =
      run_exchange({1, sim::kDummyKey}, {2, sim::kDummyKey},
                   sort::ExchangeProtocol::HalfExchange);
  EXPECT_EQ(lower, (std::vector<Key>{1, 2}));
  EXPECT_EQ(upper,
            (std::vector<Key>{sim::kDummyKey, sim::kDummyKey}));
}

TEST(Exchange, DeterministicTiming) {
  util::Rng rng(2);
  auto a = sort::gen_uniform(64, rng);
  auto b = sort::gen_uniform(64, rng);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  sim::RunReport first;
  sim::RunReport second;
  for (sim::RunReport* report : {&first, &second}) {
    sim::Machine machine(1, fault::FaultSet(1));
    const auto program = [&](sim::NodeCtx& ctx) -> sim::Task<void> {
      auto block = ctx.id() == 0 ? a : b;
      auto out = co_await sort::exchange_merge_split(
          ctx, ctx.id() ^ 1u, 0, std::move(block),
          ctx.id() == 0 ? sort::SplitHalf::Lower : sort::SplitHalf::Upper,
          sort::ExchangeProtocol::HalfExchange);
      (void)out;
    };
    *report = machine.run(program);
  }
  EXPECT_DOUBLE_EQ(first.makespan, second.makespan);
  EXPECT_EQ(first.messages, second.messages);
}

}  // namespace
}  // namespace ftsort
