// Unit tests for the discrete-event machine: tasks, message passing,
// logical clocks, cost accounting, deadlock detection, tracing.
#include <gtest/gtest.h>

#include "sim/machine.hpp"

namespace ftsort::sim {
namespace {

fault::FaultSet no_faults(cube::Dim n) { return fault::FaultSet(n); }

TEST(Task, RunsToCompletionAndReturnsValue) {
  auto coro = []() -> Task<int> { co_return 42; };
  Task<int> t = coro();
  EXPECT_FALSE(t.done());
  t.start();
  EXPECT_TRUE(t.done());
  EXPECT_EQ(t.take_result(), 42);
}

TEST(Task, PropagatesExceptions) {
  auto coro = []() -> Task<int> {
    throw std::runtime_error("boom");
    co_return 0;
  };
  Task<int> t = coro();
  t.start();
  EXPECT_TRUE(t.done());
  EXPECT_THROW(t.take_result(), std::runtime_error);
}

TEST(Task, NestedAwaitPassesValues) {
  auto inner = []() -> Task<int> { co_return 7; };
  auto outer = [&]() -> Task<int> {
    const int x = co_await inner();
    co_return x * 3;
  };
  Task<int> t = outer();
  t.start();
  EXPECT_EQ(t.take_result(), 21);
}

TEST(Machine, PingPongDeliversPayloadAndAdvancesClocks) {
  Machine machine(1, no_faults(1));
  std::vector<Key> got;
  const auto program = [&](NodeCtx& ctx) -> Task<void> {
    if (ctx.id() == 0) {
      ctx.send(1, 5, {10, 20, 30});
      Message reply = co_await ctx.recv(1, 6);
      got = reply.payload.vec();
    } else {
      Message msg = co_await ctx.recv(0, 5);
      ctx.send(0, 6, std::move(msg.payload));
    }
  };
  const RunReport report = machine.run(program);
  EXPECT_EQ(got, (std::vector<Key>{10, 20, 30}));
  EXPECT_EQ(report.messages, 2u);
  EXPECT_EQ(report.keys_sent, 6u);
  EXPECT_EQ(report.key_hops, 6u);  // neighbours: 1 hop each way
  // Two 3-key transfers at 8 µs/key back-to-back.
  EXPECT_DOUBLE_EQ(report.makespan, 2 * 3 * 8.0);
}

TEST(Machine, RecvBeforeSendSuspendsAndResumes) {
  // Node 1 posts its recv before node 0 runs (address order starts the
  // receive first when node 1's program is kicked after node 0's... force
  // the suspended path by having node 1 wait for a message node 0 sends
  // only after receiving from node 1).
  Machine machine(1, no_faults(1));
  bool done0 = false;
  const auto program = [&](NodeCtx& ctx) -> Task<void> {
    if (ctx.id() == 0) {
      Message msg = co_await ctx.recv(1, 1);  // suspends: nothing sent yet
      EXPECT_EQ(msg.payload.size(), 1u);
      done0 = true;
    } else {
      ctx.send(0, 1, {99});
    }
  };
  machine.run(program);
  EXPECT_TRUE(done0);
}

TEST(Machine, FifoPerChannel) {
  Machine machine(1, no_faults(1));
  std::vector<Key> order;
  const auto program = [&](NodeCtx& ctx) -> Task<void> {
    if (ctx.id() == 0) {
      ctx.send(1, 1, {1});
      ctx.send(1, 1, {2});
      ctx.send(1, 1, {3});
    } else {
      for (int i = 0; i < 3; ++i) {
        Message msg = co_await ctx.recv(0, 1);
        order.push_back(msg.payload[0]);
      }
    }
  };
  machine.run(program);
  EXPECT_EQ(order, (std::vector<Key>{1, 2, 3}));
}

TEST(Machine, TagsSeparateChannels) {
  Machine machine(1, no_faults(1));
  std::vector<Key> got;
  const auto program = [&](NodeCtx& ctx) -> Task<void> {
    if (ctx.id() == 0) {
      ctx.send(1, /*tag=*/2, {222});
      ctx.send(1, /*tag=*/1, {111});
    } else {
      // Receive tag 1 first even though tag 2 was sent first.
      Message first = co_await ctx.recv(0, 1);
      Message second = co_await ctx.recv(0, 2);
      got = {first.payload[0], second.payload[0]};
    }
  };
  machine.run(program);
  EXPECT_EQ(got, (std::vector<Key>{111, 222}));
}

TEST(Machine, MultiHopChargesStoreAndForward) {
  // Q_2, send 0 -> 3: two hops under e-cube routing.
  Machine machine(2, no_faults(2));
  SimTime arrival = 0;
  const auto program = [&](NodeCtx& ctx) -> Task<void> {
    if (ctx.id() == 0) {
      ctx.send(3, 1, {1, 2});
    } else if (ctx.id() == 3) {
      Message msg = co_await ctx.recv(0, 1);
      EXPECT_EQ(msg.hops, 2);
      arrival = ctx.now();
    }
    co_return;
  };
  const RunReport report = machine.run(program);
  EXPECT_DOUBLE_EQ(arrival, 2 * 2 * 8.0);  // hops * keys * t_transfer
  EXPECT_EQ(report.key_hops, 4u);
}

TEST(Machine, PartialFaultRoutesThroughFaultyNode) {
  // Q_2 with node 1 faulty: 0 -> 3 still two hops (VERTEX-style).
  Machine machine(2, fault::FaultSet(2, {1}), fault::FaultModel::Partial);
  int hops = 0;
  const auto program = [&](NodeCtx& ctx) -> Task<void> {
    if (ctx.id() == 0) {
      ctx.send(3, 1, {1});
    } else if (ctx.id() == 3) {
      Message msg = co_await ctx.recv(0, 1);
      hops = msg.hops;
    }
    co_return;
  };
  machine.run(program);
  EXPECT_EQ(hops, 2);
}

TEST(Machine, TotalFaultDetoursAndCostsMore) {
  // Q_2 with node 1 faulty under the total model: 0 -> 3 must go via 2,
  // still 2 hops here; make it cost more with two faults in Q_3.
  Machine machine(3, fault::FaultSet(3, {1, 2}), fault::FaultModel::Total);
  int hops = 0;
  const auto program = [&](NodeCtx& ctx) -> Task<void> {
    if (ctx.id() == 0) {
      ctx.send(3, 1, {1});
    } else if (ctx.id() == 3) {
      Message msg = co_await ctx.recv(0, 1);
      hops = msg.hops;
    }
    co_return;
  };
  machine.run(program);
  EXPECT_GE(hops, 3);  // both 2-hop routes blocked; detour needed
}

TEST(Machine, ChargeComparesAccumulates) {
  Machine machine(0, no_faults(0));
  const auto program = [&](NodeCtx& ctx) -> Task<void> {
    ctx.charge_compares(10);
    ctx.charge_compares(5);
    co_return;
  };
  const RunReport report = machine.run(program);
  EXPECT_EQ(report.comparisons, 15u);
  EXPECT_DOUBLE_EQ(report.makespan, 15 * 2.0);
}

TEST(Machine, ChargeTimeRejectsNegative) {
  Machine machine(0, no_faults(0));
  const auto program = [&](NodeCtx& ctx) -> Task<void> {
    ctx.charge_time(-1.0);
    co_return;
  };
  EXPECT_THROW(machine.run(program), std::runtime_error);
}

TEST(Machine, RecvClockIsMaxOfLocalAndArrival) {
  // Receiver does heavy local work first: clock should not regress.
  Machine machine(1, no_faults(1));
  SimTime at_recv = 0;
  const auto program = [&](NodeCtx& ctx) -> Task<void> {
    if (ctx.id() == 0) {
      ctx.send(1, 1, {1});
    } else {
      ctx.charge_time(10'000.0);
      Message msg = co_await ctx.recv(0, 1);
      (void)msg;
      at_recv = ctx.now();
    }
    co_return;
  };
  machine.run(program);
  EXPECT_DOUBLE_EQ(at_recv, 10'000.0);
}

TEST(Machine, DeadlockDetected) {
  Machine machine(1, no_faults(1));
  const auto program = [&](NodeCtx& ctx) -> Task<void> {
    // Both nodes wait for a message that never comes.
    Message msg = co_await ctx.recv(ctx.id() ^ 1u, 9);
    (void)msg;
  };
  EXPECT_THROW(machine.run(program), DeadlockError);
}

TEST(Machine, NodeExceptionAnnotatedWithNodeId) {
  Machine machine(1, no_faults(1));
  const auto program = [&](NodeCtx& ctx) -> Task<void> {
    if (ctx.id() == 1) throw std::runtime_error("bad node");
    co_return;
  };
  try {
    machine.run(program);
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("node 1"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("bad node"), std::string::npos);
  }
}

TEST(Machine, SendToFaultyNodeRejected) {
  Machine machine(2, fault::FaultSet(2, {3}));
  const auto program = [&](NodeCtx& ctx) -> Task<void> {
    if (ctx.id() == 0) ctx.send(3, 1, {1});
    co_return;
  };
  EXPECT_THROW(machine.run(program), std::runtime_error);
}

TEST(Machine, SendToSelfRejected) {
  Machine machine(1, no_faults(1));
  const auto program = [&](NodeCtx& ctx) -> Task<void> {
    ctx.send(ctx.id(), 1, {1});
    co_return;
  };
  EXPECT_THROW(machine.run(program), std::runtime_error);
}

TEST(Machine, FaultyNodesRunNoProgram) {
  Machine machine(2, fault::FaultSet(2, {0, 1}));
  int instantiations = 0;
  const auto program = [&](NodeCtx& ctx) -> Task<void> {
    ++instantiations;
    (void)ctx;
    co_return;
  };
  machine.run(program);
  EXPECT_EQ(instantiations, 2);  // only nodes 2 and 3
}

TEST(Machine, ReusableForMultipleRuns) {
  Machine machine(1, no_faults(1));
  const auto program = [&](NodeCtx& ctx) -> Task<void> {
    if (ctx.id() == 0) ctx.send(1, 1, {1});
    else { Message m = co_await ctx.recv(0, 1); (void)m; }
  };
  const RunReport first = machine.run(program);
  const RunReport second = machine.run(program);
  EXPECT_DOUBLE_EQ(first.makespan, second.makespan);
  EXPECT_EQ(first.messages, second.messages);
}

TEST(Machine, StartupCostAddsPerHop) {
  CostModel cost{0.0, 0.0, 100.0};  // startup only
  Machine machine(2, no_faults(2), fault::FaultModel::Partial, cost);
  SimTime arrival = 0;
  const auto program = [&](NodeCtx& ctx) -> Task<void> {
    if (ctx.id() == 0) {
      ctx.send(3, 1, std::vector<Key>{});
    } else if (ctx.id() == 3) {
      Message msg = co_await ctx.recv(0, 1);
      (void)msg;
      arrival = ctx.now();
    }
    co_return;
  };
  machine.run(program);
  EXPECT_DOUBLE_EQ(arrival, 200.0);  // 2 hops x 100 µs
}

TEST(Machine, TraceRecordsSendRecvCompute) {
  Machine machine(1, no_faults(1));
  machine.trace().enable();
  const auto program = [&](NodeCtx& ctx) -> Task<void> {
    if (ctx.id() == 0) {
      ctx.charge_compares(3);
      ctx.send(1, 1, {1, 2});
    } else {
      Message m = co_await ctx.recv(0, 1);
      (void)m;
    }
    co_return;
  };
  machine.run(program);
  const auto events = machine.trace().snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, EventKind::Compute);
  EXPECT_EQ(events[1].kind, EventKind::Send);
  EXPECT_EQ(events[2].kind, EventKind::Recv);
  EXPECT_EQ(events[1].keys, 2u);
  const std::string dump = machine.trace().to_string();
  EXPECT_NE(dump.find("send"), std::string::npos);
  EXPECT_NE(dump.find("recv"), std::string::npos);
}

TEST(CostModelValues, PaperAlgebra) {
  const CostModel cm = CostModel::ncube7();
  EXPECT_DOUBLE_EQ(cm.compare_time(10), 20.0);
  EXPECT_DOUBLE_EQ(cm.injection_time(4), 32.0);
  EXPECT_DOUBLE_EQ(cm.transfer_time(4, 3), 96.0);
  const CostModel with_startup = CostModel::ncube7_with_startup();
  EXPECT_DOUBLE_EQ(with_startup.transfer_time(0, 2), 700.0);
}

// Pins the start-up semantics the header documents: t_startup is charged
// once per message at injection, and then once per hop under
// store-and-forward (each intermediate stores and re-injects the whole
// message) — never per hop at injection. A single-hop send therefore
// costs 2*t_s + 2*k*t_t end to end under SAF.
TEST(CostModelValues, StartupChargedOncePerMessageAtInjection) {
  const CostModel cm = CostModel::ncube7_with_startup();
  EXPECT_DOUBLE_EQ(cm.injection_time(4), 350.0 + 32.0);
  // injection does not scale with hops — that is transfer_time's job
  EXPECT_DOUBLE_EQ(cm.transfer_time(4, 1), 350.0 + 32.0);
  EXPECT_DOUBLE_EQ(cm.transfer_time(4, 3), 3 * (350.0 + 32.0));
}

// Cut-through pays the start-up per hop for the header only; the body
// pipelines behind it: h*t_s + k*t_t instead of h*(t_s + k*t_t).
TEST(CostModelValues, CutThroughPipelinesTheBody) {
  const CostModel ct = CostModel::wormhole();
  EXPECT_EQ(ct.routing, RoutingMode::CutThrough);
  EXPECT_DOUBLE_EQ(ct.transfer_time(4, 3), 3 * 350.0 + 32.0);
  // Validation property: the two modes agree on single-hop transfers.
  const CostModel saf = CostModel::ncube7_with_startup();
  for (const std::size_t k : {0u, 1u, 4u, 1000u})
    EXPECT_DOUBLE_EQ(ct.transfer_time(k, 1), saf.transfer_time(k, 1));
  // ...and wormhole differs from SAF only by the routing mode.
  EXPECT_DOUBLE_EQ(ct.t_compare, saf.t_compare);
  EXPECT_DOUBLE_EQ(ct.t_transfer, saf.t_transfer);
  EXPECT_DOUBLE_EQ(ct.t_startup, saf.t_startup);
}

// link_busy is wire occupancy and deliberately mode-independent: every
// traversal drives one start-up onto the wire and every key-hop one
// transfer, whether or not downstream hops overlap with it.
TEST(CostModelValues, LinkBusyIsModeIndependent) {
  const CostModel saf = CostModel::ncube7_with_startup();
  CostModel ct = saf;
  ct.routing = RoutingMode::CutThrough;
  EXPECT_DOUBLE_EQ(saf.link_busy(3, 12), 3 * 350.0 + 12 * 8.0);
  EXPECT_DOUBLE_EQ(ct.link_busy(3, 12), saf.link_busy(3, 12));
}

TEST(CostModelValues, NamesIdentifyTheConstructors) {
  EXPECT_EQ(CostModel::ncube7().name(), "ncube7");
  EXPECT_EQ(CostModel::ncube7_with_startup().name(), "ncube7_startup");
  EXPECT_EQ(CostModel::wormhole().name(), "wormhole");
  CostModel tweaked = CostModel::ncube7();
  tweaked.t_transfer = 9.0;
  EXPECT_EQ(tweaked.name(), "custom");
  EXPECT_EQ(CostModel::ncube7().mode_name(), "store_and_forward");
  EXPECT_EQ(CostModel::wormhole().mode_name(), "cut_through");
}

}  // namespace
}  // namespace ftsort::sim
