// Wall-clock watchdog suite (sim/watchdog.hpp): the generic heartbeat
// monitor, both Machine executors under an induced host-level stall, the
// determinism contract (armed watchdog changes no exported byte beyond
// its own config echo), the campaign integration (per-trial + pool
// watchdog, cancellation, partial reports), and the `ftdiag stuck`
// decode of a real dump.
//
// Timing discipline: tests that must NOT trip use deadlines orders of
// magnitude above any plausible scheduling hiccup (and the monitor's
// measured-progress scaling raises the bar further on slow CI); tests
// that MUST trip induce multi-hundred-ms silences against sub-200 ms
// deadlines, a 4x+ margin on the other side.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "core/ft_sorter.hpp"
#include "fault/scenario.hpp"
#include "sim/exporters.hpp"
#include "sim/machine.hpp"
#include "sim/watchdog.hpp"
#include "sort/distribution.hpp"
#include "tools/ftdiag.hpp"
#include "util/rng.hpp"

namespace ftsort {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// Generic monitor behavior, no Machine involved.

TEST(WatchdogUnit, HealthyBeatsNeverTrip) {
  sim::WatchdogConfig cfg;
  cfg.enabled = true;
  cfg.interval_ms = 5;
  cfg.deadline_ms = 10'000;
  sim::Watchdog wd(cfg);
  const std::size_t slot = wd.add_slot("pulse");
  wd.start();
  for (int i = 0; i < 30; ++i) {
    wd.beat(slot, static_cast<std::uint64_t>(i));
    std::this_thread::sleep_for(2ms);
  }
  wd.stop();
  EXPECT_FALSE(wd.tripped());
  const sim::WatchdogReport rep = wd.report();
  EXPECT_TRUE(rep.enabled);
  EXPECT_EQ(rep.trips, 0u);
  EXPECT_EQ(rep.near_misses, 0u);
  EXPECT_GE(rep.polls, 1u);
  ASSERT_EQ(rep.slots.size(), 1u);
  EXPECT_EQ(rep.slots[0].label, "pulse");
  EXPECT_EQ(rep.slots[0].beats, 30u);
}

TEST(WatchdogUnit, AbortPolicyTripsOnSilenceAndLatches) {
  sim::WatchdogConfig cfg;
  cfg.enabled = true;
  cfg.interval_ms = 5;
  cfg.deadline_ms = 60;
  cfg.abort_on_trip = true;
  sim::Watchdog wd(cfg);
  wd.add_slot("silent");
  std::atomic<int> trips_seen{0};
  wd.on_trip([&trips_seen] { trips_seen.fetch_add(1); });
  wd.start();
  const auto t0 = std::chrono::steady_clock::now();
  while (!wd.tripped() &&
         std::chrono::steady_clock::now() - t0 < 5s)
    std::this_thread::sleep_for(5ms);
  EXPECT_TRUE(wd.tripped());
  wd.stop();
  EXPECT_EQ(trips_seen.load(), 1);
  const sim::WatchdogReport rep = wd.report();
  EXPECT_EQ(rep.trips, 1u);
  EXPECT_GE(rep.stall_ms, 60u);
  EXPECT_GE(rep.effective_deadline_ms, 60u);
}

TEST(WatchdogUnit, RecordPolicyCountsNearMissesAndKeepsMonitoring) {
  sim::WatchdogConfig cfg;
  cfg.enabled = true;
  cfg.interval_ms = 5;
  cfg.deadline_ms = 40;
  cfg.abort_on_trip = false;
  sim::Watchdog wd(cfg);
  const std::size_t slot = wd.add_slot("bursty");
  wd.start();
  std::this_thread::sleep_for(200ms);  // >> deadline: at least one breach
  wd.beat(slot);                       // then progress resumes
  std::this_thread::sleep_for(20ms);
  wd.stop();
  EXPECT_FALSE(wd.tripped());  // record policy never latches
  const sim::WatchdogReport rep = wd.report();
  EXPECT_EQ(rep.trips, 0u);
  EXPECT_GE(rep.near_misses, 1u);
}

TEST(WatchdogUnit, DisabledConfigIsAFullNoOp) {
  sim::Watchdog wd(sim::WatchdogConfig{});  // enabled = false
  const std::size_t slot = wd.add_slot("idle");
  wd.start();  // no monitor thread
  wd.beat(slot);
  wd.stop();
  EXPECT_FALSE(wd.tripped());
  EXPECT_EQ(wd.report().polls, 0u);
}

TEST(WatchdogUnit, TerminalSlotsAreMarkedInTheCapture) {
  sim::WatchdogConfig cfg;
  cfg.enabled = true;
  cfg.interval_ms = 5;
  cfg.deadline_ms = 10'000;
  sim::Watchdog wd(cfg);
  const std::size_t a = wd.add_slot("a");
  const std::size_t b = wd.add_slot("b");
  wd.start();
  wd.beat(a, 3);
  wd.beat(b, sim::Watchdog::kActivityTerminal);
  std::this_thread::sleep_for(30ms);  // let the monitor observe both
  wd.stop();
  const sim::WatchdogReport rep = wd.report();
  ASSERT_EQ(rep.slots.size(), 2u);
  EXPECT_FALSE(rep.slots[0].terminal);
  EXPECT_TRUE(rep.slots[1].terminal);
  EXPECT_EQ(rep.slots[1].activity, "terminal");
}

// ---------------------------------------------------------------------------
// Machine integration: an induced host-level stall (a node program that
// wedges the host thread in a wall-clock sleep — invisible to the
// logical deadlock detector, which only sees blocked receives).

fault::FaultSet no_faults(cube::Dim n) { return fault::FaultSet(n); }

sim::WatchdogConfig trippy_config(const std::string& dump_path = {}) {
  sim::WatchdogConfig cfg;
  cfg.enabled = true;
  cfg.interval_ms = 5;
  cfg.deadline_ms = 150;
  cfg.abort_on_trip = true;
  cfg.dump_path = dump_path;
  return cfg;
}

TEST(WatchdogMachine, ThreadedTripNamesTheWedgedNodeAndDumps) {
  const std::string dump = testing::TempDir() + "wd_threaded_dump.json";
  sim::Machine machine(1, no_faults(1));  // Q_1: nodes 0 and 1
  machine.set_watchdog(trippy_config(dump));
  const auto program = [](sim::NodeCtx& ctx) -> sim::Task<void> {
    if (ctx.id() == 0) std::this_thread::sleep_for(700ms);
    co_return;
  };
  try {
    machine.run_threaded(program);
    FAIL() << "expected WatchdogError";
  } catch (const sim::WatchdogError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("watchdog tripped"), std::string::npos) << what;
    EXPECT_NE(what.find("node 0"), std::string::npos) << what;
    EXPECT_EQ(e.report().trips, 1u);
    // The breach-time capture blames the wedged node, not the finished one.
    bool node0_live = false;
    for (const sim::WatchdogSlotView& s : e.report().slots)
      if (s.label == "node 0") node0_live = !s.terminal;
    EXPECT_TRUE(node0_live);
  }
  // The black-box dump decodes to the same verdict via ftdiag stuck.
  const std::ifstream probe(dump);
  ASSERT_TRUE(probe.good()) << "dump file missing: " << dump;
  const char* argv[] = {"ftdiag", "stuck", dump.c_str()};
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(tools::run_cli(3, argv, out, err), 1) << err.str();
  EXPECT_NE(out.str().find("most silent: node 0"), std::string::npos)
      << out.str();
}

TEST(WatchdogMachine, SequentialTripThrowsWatchdogErrorNotDeadlock) {
  sim::Machine machine(1, no_faults(1));
  machine.set_watchdog(trippy_config());
  const auto program = [](sim::NodeCtx& ctx) -> sim::Task<void> {
    if (ctx.id() == 0) std::this_thread::sleep_for(700ms);
    co_return;
  };
  EXPECT_THROW(machine.run(program), sim::WatchdogError);
}

TEST(WatchdogMachine, HealthyRunReportsZeroTripsAndArmedConfig) {
  sim::Machine machine(1, no_faults(1));
  sim::WatchdogConfig cfg;
  cfg.enabled = true;       // generous deadline: must never trip
  cfg.deadline_ms = 60'000;
  machine.set_watchdog(cfg);
  const auto program = [](sim::NodeCtx& ctx) -> sim::Task<void> {
    if (ctx.id() == 0) {
      ctx.send(1, 1, {7});
    } else {
      (void)co_await ctx.recv(0, 1);
    }
    co_return;
  };
  const sim::RunReport rep = machine.run(program);
  EXPECT_TRUE(rep.watchdog.enabled);
  EXPECT_EQ(rep.watchdog.trips, 0u);
  EXPECT_EQ(rep.watchdog.near_misses, 0u);
}

// ---------------------------------------------------------------------------
// Determinism: arming the watchdog changes nothing but its own config
// echo in the metrics export, and the executors still agree on every
// logical result while armed.

core::SortOutcome sort_fig7(core::Executor exec, bool watchdog) {
  util::Rng rng(1706);
  const fault::FaultSet faults = fault::random_faults(6, 2, rng);
  const auto keys = sort::gen_uniform(1'600, rng);
  core::SortConfig cfg;
  cfg.protocol = sort::ExchangeProtocol::FullExchange;
  cfg.executor = exec;
  cfg.record_metrics = true;
  cfg.record_trace = true;
  cfg.record_link_stats = true;
  if (watchdog) {
    cfg.watchdog.enabled = true;
    cfg.watchdog.deadline_ms = 60'000;
  }
  const core::FaultTolerantSorter sorter(6, faults, cfg);
  return sorter.sort(keys);
}

TEST(WatchdogDeterminism, MetricsJsonIdenticalModuloTheWatchdogBlock) {
  std::ostringstream off_os;
  std::ostringstream on_os;
  sim::write_metrics_json(off_os,
                          sort_fig7(core::Executor::Sequential, false).report);
  sim::write_metrics_json(on_os,
                          sort_fig7(core::Executor::Sequential, true).report);
  const std::string off = off_os.str();
  std::string on = on_os.str();
  const std::string armed =
      "\"watchdog\": {\"enabled\": true, \"policy\": \"abort\", "
      "\"deadline_ms\": 60000, \"interval_ms\": 25, \"trips\": 0, "
      "\"near_misses\": 0}";
  const std::size_t at = on.find(armed);
  ASSERT_NE(at, std::string::npos) << on.substr(0, 400);
  on.replace(at, armed.size(), "\"watchdog\": {\"enabled\": false}");
  EXPECT_EQ(on, off);
}

TEST(WatchdogDeterminism, ExecutorsAgreeByteForByteWhileArmed) {
  const core::SortOutcome seq = sort_fig7(core::Executor::Sequential, true);
  const core::SortOutcome thr = sort_fig7(core::Executor::Threaded, true);
  EXPECT_EQ(seq.sorted, thr.sorted);
  EXPECT_DOUBLE_EQ(seq.report.makespan, thr.report.makespan);
  EXPECT_EQ(seq.report.comparisons, thr.report.comparisons);
  EXPECT_EQ(seq.report.messages, thr.report.messages);
  EXPECT_EQ(seq.report.keys_sent, thr.report.keys_sent);
  EXPECT_EQ(seq.report.watchdog.trips, 0u);
  EXPECT_EQ(thr.report.watchdog.trips, 0u);
}

// ---------------------------------------------------------------------------
// Campaign integration.

campaign::CampaignConfig small_campaign() {
  campaign::CampaignConfig cfg;
  cfg.universe.n = 3;
  cfg.universe.r_max = 1;
  cfg.universe.scenarios = 4;
  cfg.universe.num_keys = 64;
  cfg.seed = 99;
  cfg.workers = 2;
  return cfg;
}

std::string campaign_json(const campaign::CampaignReport& report) {
  std::ostringstream os;
  campaign::write_campaign_json(os, report);
  return os.str();
}

TEST(WatchdogCampaign, ReportBytesIndependentOfTheWatchdog) {
  const campaign::CampaignReport off = campaign::run_campaign(small_campaign());
  campaign::CampaignConfig armed = small_campaign();
  armed.watchdog.enabled = true;
  armed.watchdog.deadline_ms = 60'000;
  const campaign::CampaignReport on = campaign::run_campaign(armed);
  EXPECT_EQ(campaign_json(off), campaign_json(on));
  EXPECT_EQ(on.watchdog_trips, 0u);
  EXPECT_EQ(on.watchdog_near_misses, 0u);
  EXPECT_FALSE(on.partial);
}

TEST(WatchdogCampaign, PreCancelledSweepYieldsAnEmptyPartialReport) {
  campaign::CampaignConfig cfg = small_campaign();
  const std::atomic<bool> cancel{true};  // set before the pool starts
  cfg.cancel = &cancel;
  const campaign::CampaignReport report = campaign::run_campaign(cfg);
  EXPECT_TRUE(report.partial);
  EXPECT_TRUE(report.trials.empty());
  const std::string json = campaign_json(report);
  EXPECT_NE(json.find("\"partial\": true"), std::string::npos);
}

TEST(WatchdogCampaign, ProgressCallbackSeesTheFinishedSweep) {
  campaign::CampaignConfig cfg = small_campaign();
  cfg.progress_interval_ms = 10;
  std::atomic<std::uint32_t> last_done{0};
  std::atomic<std::uint32_t> total{0};
  cfg.on_progress = [&](const campaign::CampaignProgress& p) {
    last_done.store(p.done);
    total.store(p.total);
  };
  const campaign::CampaignReport report = campaign::run_campaign(cfg);
  // The final sample (after the pool joins) must report the whole sweep.
  EXPECT_EQ(last_done.load(), cfg.universe.trials());
  EXPECT_EQ(total.load(), cfg.universe.trials());
  EXPECT_EQ(report.trials.size(), cfg.universe.trials());
}

TEST(WatchdogCampaign, CampaignJsonCarriesTheWatchdogRollup) {
  const campaign::CampaignReport report =
      campaign::run_campaign(small_campaign());
  const std::string json = campaign_json(report);
  EXPECT_NE(json.find("\"watchdog\": {\"trips\": 0, \"near_misses\": 0}"),
            std::string::npos);
  EXPECT_NE(json.find("\"partial\": false"), std::string::npos);
  EXPECT_NE(json.find("\"watchdog_trips\": 0"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Dump rendering + ftdiag stuck, end to end on a synthetic report.

TEST(WatchdogDump, RenderIsByteStableAndCarriesTheMarker) {
  sim::WatchdogReport rep;
  rep.enabled = true;
  rep.abort_on_trip = true;
  rep.deadline_ms = 100;
  rep.interval_ms = 10;
  rep.trips = 1;
  rep.stall_ms = 432;
  rep.effective_deadline_ms = 100;
  rep.slots.push_back({"node 2", 17, 432, "merge_exchange", false});
  rep.slots.push_back({"node 0", 23, 5, "terminal", true});
  const std::string a =
      sim::render_watchdog_dump(rep, sim::WatchdogDumpContext{});
  const std::string b =
      sim::render_watchdog_dump(rep, sim::WatchdogDumpContext{});
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"watchdog_dump\": true"), std::string::npos);
  EXPECT_NE(a.find("\"schema_version\": 1"), std::string::npos);

  const tools::StuckResult res = tools::stuck_report(a);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.trips, 1u);
  ASSERT_EQ(res.slots.size(), 2u);
  // Most-silent-first, terminals last.
  EXPECT_EQ(res.slots[0].slot, "node 2");
  EXPECT_FALSE(res.slots[0].terminal);
  EXPECT_TRUE(res.slots[1].terminal);
  EXPECT_NE(res.text.find("most silent: node 2"), std::string::npos);
}

TEST(WatchdogDump, StuckRefusesNonDumpsAndNewerSchemas) {
  const tools::StuckResult not_dump = tools::stuck_report("{\"x\": 1}");
  EXPECT_FALSE(not_dump.ok);
  EXPECT_NE(not_dump.error.find("watchdog_dump"), std::string::npos);

  const tools::StuckResult newer = tools::stuck_report(
      "{\"watchdog_dump\": true, \"schema_version\": 99, "
      "\"heartbeats\": []}");
  EXPECT_FALSE(newer.ok);
  EXPECT_NE(newer.error.find("reads up to v1"), std::string::npos)
      << newer.error;
}

}  // namespace
}  // namespace ftsort
