// Key-lineage provenance (sim::Lineage, RunReport::lineage) and the
// `ftdiag lineage` CLI.
//
// Lineage is a logical-clock artifact like Timeline: custody commits at
// deterministic merge points and hop charges are integer sums, so
// snapshots must be byte-identical across executors, enabling the flag
// must charge zero simulated time, and the conservation invariant —
// Σ per-key per-dimension hops + untracked == LinkStats key_hops — must
// hold exactly. The suites all start with "Lineage" so the tsan preset's
// name filter picks them up.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/ft_sorter.hpp"
#include "core/outcome.hpp"
#include "fault/scenario.hpp"
#include "sim/exporters.hpp"
#include "sim/lineage.hpp"
#include "sim/link_stats.hpp"
#include "sort/distribution.hpp"
#include "tools/ftdiag.hpp"
#include "util/rng.hpp"

namespace ftsort {
namespace {

// The pinned fig7 flagship (no kills, static faults only) and the pinned
// recovery scenario (node 6 dies mid-sort) — the same seeds the other
// observability suites use, so golden values stay comparable.

core::SortOutcome run_fig7(core::Executor exec, bool lineage) {
  util::Rng rng(1706);
  const fault::FaultSet faults = fault::random_faults(6, 2, rng);
  const auto keys = sort::gen_uniform(3'200, rng);
  core::SortConfig cfg;
  cfg.protocol = sort::ExchangeProtocol::FullExchange;
  cfg.executor = exec;
  cfg.record_metrics = true;
  cfg.record_link_stats = true;
  cfg.record_lineage = lineage;
  const core::FaultTolerantSorter sorter(6, faults, cfg);
  return sorter.sort(keys);
}

core::SortOutcome run_recovery(core::Executor exec, bool lineage = true) {
  util::Rng rng(1703);
  const fault::FaultSet faults = fault::random_faults(3, 1, rng);
  const auto keys = sort::gen_uniform(200, rng);
  core::SortConfig cfg;
  cfg.executor = exec;
  cfg.online_recovery = true;
  cfg.injector.kill_node_at(6, 2000.0);
  cfg.record_metrics = true;
  cfg.record_trace = true;
  cfg.record_link_stats = true;
  cfg.record_lineage = lineage;
  const core::FaultTolerantSorter sorter(3, faults, cfg);
  return sorter.sort(keys);
}

std::vector<sort::Key> recovery_expected() {
  util::Rng rng(1703);
  (void)fault::random_faults(3, 1, rng);
  auto keys = sort::gen_uniform(200, rng);
  std::sort(keys.begin(), keys.end());
  return keys;
}

/// Per-dimension conservation against LinkStats: both sides charge at
/// NodeCtx::send from the same router path, so equality is exact.
void expect_conserves_hops(const sim::LineageSnapshot& lin,
                           const sim::LinkStatsSnapshot& links) {
  ASSERT_TRUE(lin.enabled);
  ASSERT_FALSE(links.empty());
  for (cube::Dim d = 0; d < links.dim; ++d)
    EXPECT_EQ(lin.hops_by_dim(d) + lin.untracked[static_cast<std::size_t>(d)],
              links.dim_total(d).key_hops)
        << "dimension " << d;
}

std::string metrics_json_of(const core::SortOutcome& out) {
  std::ostringstream os;
  sim::write_metrics_json(os, out.report);
  return os.str();
}

/// Fixed-name temp files: tests run single-process, no collisions.
std::string write_temp(const char* name, const std::string& text) {
  const std::string path = std::string("lineage_test_") + name + ".json";
  std::ofstream f(path);
  f << text;
  return path;
}

// ---------------------------------------------------------------------------
// Tracker basics: off by default, observation only, deterministic.

TEST(LineageTracker, DisabledByDefaultAndObservationOnly) {
  const core::SortOutcome off = run_fig7(core::Executor::Sequential, false);
  EXPECT_FALSE(off.report.lineage.enabled);
  EXPECT_TRUE(off.report.lineage.empty());
  EXPECT_TRUE(off.report.lineage.keys.empty());

  const core::SortOutcome on = run_fig7(core::Executor::Sequential, true);
  ASSERT_TRUE(on.report.lineage.enabled);
  EXPECT_FALSE(on.report.lineage.empty());
  // Tracking is observation only: every logical outcome — and therefore
  // every golden — is untouched by the flag.
  EXPECT_DOUBLE_EQ(off.report.makespan, on.report.makespan);
  EXPECT_EQ(off.report.comparisons, on.report.comparisons);
  EXPECT_EQ(off.report.messages, on.report.messages);
  EXPECT_EQ(off.report.key_hops, on.report.key_hops);
  EXPECT_TRUE(off.report.metrics == on.report.metrics);
  EXPECT_TRUE(off.report.links == on.report.links);
  EXPECT_EQ(off.sorted, on.sorted);
}

TEST(LineageTracker, ExecutorsProduceIdenticalSnapshots) {
  const core::SortOutcome seq = run_fig7(core::Executor::Sequential, true);
  const core::SortOutcome thr = run_fig7(core::Executor::Threaded, true);
  ASSERT_TRUE(seq.report.lineage.enabled);
  EXPECT_TRUE(seq.report.lineage == thr.report.lineage);
}

TEST(LineageTracker, FaultFreeAuditIsExactAndConservesHops) {
  const core::SortOutcome out = run_fig7(core::Executor::Sequential, true);
  const sim::LineageSnapshot& lin = out.report.lineage;
  ASSERT_TRUE(lin.enabled);
  EXPECT_EQ(lin.dim, 6);

  // Every id accounted: real ids equal the input size, the rest padding.
  EXPECT_EQ(lin.assigned, lin.keys.size());
  EXPECT_EQ(lin.assigned - lin.dummies, 3'200u);

  // Exact no-loss/no-dup audit over the gathered output.
  ASSERT_TRUE(lin.audit.checked);
  EXPECT_TRUE(lin.audit.ok);
  EXPECT_TRUE(lin.audit.lost.empty());
  EXPECT_TRUE(lin.audit.duplicated.empty());
  EXPECT_EQ(lin.audit.salvaged, 0u);
  EXPECT_EQ(lin.resolve_mismatches, 0u);

  // Without recovery traffic every payload word a node sends is a block
  // it holds, so the conservation equation closes with zero untracked.
  EXPECT_EQ(lin.untracked_total(), 0u);
  expect_conserves_hops(lin, out.report.links);
}

// ---------------------------------------------------------------------------
// Recovery: salvage custody, witnesses, and the audit across a death.

TEST(LineageRecovery, AuditSurvivesAKillAndSalvagesThroughWitnesses) {
  const core::SortOutcome out = run_recovery(core::Executor::Sequential);
  ASSERT_EQ(out.sorted, recovery_expected());
  const sim::LineageSnapshot& lin = out.report.lineage;
  ASSERT_TRUE(lin.enabled);
  ASSERT_TRUE(lin.audit.checked);
  EXPECT_TRUE(lin.audit.ok) << lin.audit.lost.size() << " lost, "
                            << lin.audit.duplicated.size() << " duplicated";

  // Node 6 died holding keys: they must have been salvaged, and every
  // salvaged custody chain must pass through a recorded witness.
  EXPECT_GT(lin.audit.salvaged, 0u);
  EXPECT_EQ(lin.audit.witnessed_salvaged, lin.audit.salvaged);
  for (const sim::LineageKeyRecord& k : lin.keys) {
    if (!k.salvaged) continue;
    const auto it = std::find_if(k.chain.begin(), k.chain.end(),
                                 [](const sim::LineageEvent& ev) {
                                   return ev.kind ==
                                          sim::LineageEventKind::Salvage;
                                 });
    ASSERT_NE(it, k.chain.end());
    EXPECT_NE(it->peer, sim::kLineageNoWitness);
  }

  // Conservation still closes exactly; recovery's control/witness/fan-out
  // words are the untracked remainder.
  expect_conserves_hops(lin, out.report.links);
}

TEST(LineageRecovery, ExecutorsProduceIdenticalSnapshots) {
  const core::SortOutcome seq = run_recovery(core::Executor::Sequential);
  const core::SortOutcome thr = run_recovery(core::Executor::Threaded);
  ASSERT_TRUE(seq.report.lineage.enabled);
  EXPECT_TRUE(seq.report.lineage == thr.report.lineage);
}

// ---------------------------------------------------------------------------
// The audit as a detector: rerunning it against a tampered output names
// the violated ids, and the campaign classification turns that into
// RunOutcome::Corrupt.

TEST(LineageAudit, TamperedOutputNamesLostAndDuplicatedIds) {
  core::SortOutcome out = run_recovery(core::Executor::Sequential);
  ASSERT_TRUE(out.report.lineage.audit.ok);

  // Lose the smallest key, duplicate the largest: exactly the corruption
  // a value-level multiset comparison can localize but not attribute.
  std::vector<sort::Key> tampered = out.sorted;
  const sort::Key lost_value = tampered.front();
  const sort::Key dup_value = tampered.back();
  tampered.erase(tampered.begin());
  tampered.push_back(dup_value);

  sim::audit_lineage(out.report.lineage, tampered);
  const sim::LineageAudit& audit = out.report.lineage.audit;
  ASSERT_TRUE(audit.checked);
  EXPECT_FALSE(audit.ok);
  ASSERT_EQ(audit.lost.size(), 1u);
  EXPECT_EQ(audit.lost[0].value, lost_value);
  // The named id really is an id of that value.
  ASSERT_LT(audit.lost[0].id, out.report.lineage.keys.size());
  EXPECT_EQ(out.report.lineage.keys[audit.lost[0].id].value, lost_value);
  ASSERT_EQ(audit.duplicated.size(), 1u);
  EXPECT_EQ(audit.duplicated[0].value, dup_value);
  EXPECT_EQ(audit.duplicated[0].extra, 1u);
}

TEST(LineageCorruptClassification, AuditFailureClassifiesCorrupt) {
  for (const core::Executor exec :
       {core::Executor::Sequential, core::Executor::Threaded}) {
    core::SortOutcome out = run_recovery(exec);
    ASSERT_EQ(out.sorted, recovery_expected());
    // The value-level check passed and the audit passed: recovered.
    EXPECT_EQ(core::classify_completed(out.report, true),
              core::RunOutcome::CompletedRecovered);

    // A failed custody audit vetoes completion exactly like a failed
    // value comparison — the campaign runner ANDs the two verdicts.
    std::vector<sort::Key> tampered = out.sorted;
    tampered.front() = tampered.back();
    sim::audit_lineage(out.report.lineage, tampered);
    const bool sorted_ok =
        tampered == recovery_expected() && out.report.lineage.audit.ok;
    EXPECT_FALSE(sorted_ok);
    EXPECT_EQ(core::classify_completed(out.report, sorted_ok),
              core::RunOutcome::Corrupt);
  }
}

// ---------------------------------------------------------------------------
// Metrics JSON surface: schema v6 block when on, enabled:false stub off.

TEST(LineageMetricsJson, BlockCarriesAuditTrailsAndStubWhenOff) {
  const core::SortOutcome on = run_recovery(core::Executor::Sequential);
  const std::string json = metrics_json_of(on);
  EXPECT_NE(json.find("\"schema_version\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"lineage\": {"), std::string::npos);
  EXPECT_NE(json.find("\"enabled\": true"), std::string::npos);
  EXPECT_NE(json.find("\"audit\": {"), std::string::npos);
  EXPECT_NE(json.find("\"top_travelers\": ["), std::string::npos);
  EXPECT_NE(json.find("\"trail\": \"A,"), std::string::npos);

  const core::SortOutcome off =
      run_recovery(core::Executor::Sequential, false);
  const std::string stub = metrics_json_of(off);
  EXPECT_NE(stub.find("\"lineage\": {"), std::string::npos);
  EXPECT_NE(stub.find("\"enabled\": false"), std::string::npos);
  EXPECT_EQ(stub.find("\"top_travelers\""), std::string::npos);
}

TEST(LineageMetricsJson, ChromeTraceCarriesLineageSummary) {
  const core::SortOutcome out = run_recovery(core::Executor::Sequential);
  std::ostringstream os;
  sim::ChromeTraceOptions topts;
  topts.lineage = &out.report.lineage;
  sim::write_chrome_trace(os, out.trace_events, 8, topts);
  const std::string trace = os.str();
  EXPECT_NE(trace.find("lineage_summary"), std::string::npos);
  EXPECT_NE(trace.find("\"audit_ok\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// ftdiag lineage: the 0/1/2 exit contract, and naming corrupted ids.

TEST(LineageFtdiagCli, CleanReportExitsZeroInEveryMode) {
  const core::SortOutcome out = run_recovery(core::Executor::Sequential);
  const std::string path = write_temp("clean", metrics_json_of(out));
  std::ostringstream cli_out;
  std::ostringstream cli_err;

  const char* summary[] = {"ftdiag", "lineage", path.c_str()};
  EXPECT_EQ(tools::run_cli(3, summary, cli_out, cli_err), 0);
  EXPECT_NE(cli_out.str().find("audit: OK"), std::string::npos)
      << cli_out.str();

  const char* audit[] = {"ftdiag", "lineage", path.c_str(), "--audit"};
  EXPECT_EQ(tools::run_cli(4, audit, cli_out, cli_err), 0);

  const char* key[] = {"ftdiag", "lineage", path.c_str(), "--key", "0"};
  cli_out.str({});
  EXPECT_EQ(tools::run_cli(5, key, cli_out, cli_err), 0);
  EXPECT_NE(cli_out.str().find("custody trail"), std::string::npos)
      << cli_out.str();

  const char* top[] = {"ftdiag", "lineage", path.c_str(), "--top", "3"};
  cli_out.str({});
  EXPECT_EQ(tools::run_cli(5, top, cli_out, cli_err), 0);
  EXPECT_NE(cli_out.str().find("top 3 traveler"), std::string::npos)
      << cli_out.str();
}

TEST(LineageFtdiagCli, ViolatedAuditExitsOneAndNamesIds) {
  core::SortOutcome out = run_recovery(core::Executor::Sequential);
  std::vector<sort::Key> tampered = out.sorted;
  const sort::Key lost_value = tampered.front();
  tampered.erase(tampered.begin());
  tampered.push_back(tampered.back());
  sim::audit_lineage(out.report.lineage, tampered);
  ASSERT_FALSE(out.report.lineage.audit.ok);
  const std::uint64_t lost_id = out.report.lineage.audit.lost[0].id;

  const std::string path = write_temp("corrupt", metrics_json_of(out));
  std::ostringstream cli_out;
  std::ostringstream cli_err;
  const char* args[] = {"ftdiag", "lineage", path.c_str()};
  EXPECT_EQ(tools::run_cli(3, args, cli_out, cli_err), 1);
  const std::string text = cli_out.str();
  EXPECT_NE(text.find("VIOLATED"), std::string::npos) << text;
  EXPECT_NE(text.find("LOST id " + std::to_string(lost_id)),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("DUPLICATED value"), std::string::npos) << text;
  (void)lost_value;
}

TEST(LineageFtdiagCli, UsageAndParseErrorsExitTwo) {
  std::ostringstream cli_out;
  std::ostringstream cli_err;

  const char* missing[] = {"ftdiag", "lineage", "lineage_no_such.json"};
  EXPECT_EQ(tools::run_cli(3, missing, cli_out, cli_err), 2);

  const char* no_file[] = {"ftdiag", "lineage"};
  EXPECT_EQ(tools::run_cli(2, no_file, cli_out, cli_err), 2);

  // A run with lineage off exports the stub: a parse-level refusal.
  const core::SortOutcome off =
      run_recovery(core::Executor::Sequential, false);
  const std::string stub = write_temp("stub", metrics_json_of(off));
  const char* off_args[] = {"ftdiag", "lineage", stub.c_str()};
  EXPECT_EQ(tools::run_cli(3, off_args, cli_out, cli_err), 2);
  EXPECT_NE(cli_err.str().find("record_lineage off"), std::string::npos)
      << cli_err.str();

  // Unknown id in the per-key detail.
  const core::SortOutcome on = run_recovery(core::Executor::Sequential);
  const std::string path = write_temp("clean2", metrics_json_of(on));
  const char* bad_key[] = {"ftdiag", "lineage", path.c_str(), "--key",
                           "999999"};
  EXPECT_EQ(tools::run_cli(5, bad_key, cli_out, cli_err), 2);

  // The modes are exclusive.
  const char* both[] = {"ftdiag", "lineage", path.c_str(), "--audit",
                        "--top", "3"};
  EXPECT_EQ(tools::run_cli(6, both, cli_out, cli_err), 2);
}

TEST(LineageFtdiagCli, VersionPrintsSchemaTable) {
  std::ostringstream cli_out;
  std::ostringstream cli_err;
  const char* args[] = {"ftdiag", "--version"};
  EXPECT_EQ(tools::run_cli(2, args, cli_out, cli_err), 0);
  const std::string text = cli_out.str();
  EXPECT_NE(text.find("metrics JSON: up to v7"), std::string::npos) << text;
  EXPECT_NE(text.find("bench JSON: up to v3"), std::string::npos) << text;
  EXPECT_NE(text.find("campaign JSON: exactly v7"), std::string::npos)
      << text;
  EXPECT_NE(text.find("watchdog JSON: up to v1"), std::string::npos) << text;
}

}  // namespace
}  // namespace ftsort
