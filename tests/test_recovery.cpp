// Online recovery (core/recovery.hpp): mid-run processor deaths are
// detected, the partition renegotiated, keys salvaged, and the sort
// restarted — or the run degrades with a diagnostic, never hanging and
// never returning corrupt output.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/ft_sorter.hpp"
#include "sort/distribution.hpp"
#include "util/rng.hpp"

namespace ftsort {
namespace {

std::vector<sort::Key> sorted_copy(std::vector<sort::Key> keys) {
  std::sort(keys.begin(), keys.end());
  return keys;
}

core::SortConfig recovery_config(core::Executor exec = core::Executor::Sequential) {
  core::SortConfig cfg;
  cfg.online_recovery = true;
  cfg.executor = exec;
  return cfg;
}

/// Fault-free makespan of the recovery engine — the yardstick injection
/// times are expressed in.
sim::SimTime baseline_makespan(cube::Dim n, std::size_t keys_count) {
  util::Rng rng(7);
  const auto keys = sort::gen_uniform(keys_count, rng);
  core::FaultTolerantSorter sorter(n, fault::FaultSet(n), recovery_config());
  return sorter.sort(keys).report.makespan;
}

TEST(Recovery, FaultFreeRunMatchesOfflineSort) {
  util::Rng rng(11);
  const auto keys = sort::gen_uniform(300, rng);
  core::FaultTolerantSorter sorter(3, fault::FaultSet(3),
                                   recovery_config());
  const auto out = sorter.sort(keys);
  EXPECT_EQ(out.sorted, sorted_copy(keys));
  EXPECT_TRUE(out.report.killed_nodes.empty());
  EXPECT_EQ(out.report.timeouts, 0u);
}

TEST(Recovery, StaticFaultsStillSort) {
  util::Rng rng(12);
  const auto keys = sort::gen_uniform(320, rng);
  core::FaultTolerantSorter sorter(3, fault::FaultSet(3, {5}),
                                   recovery_config());
  const auto out = sorter.sort(keys);
  EXPECT_EQ(out.sorted, sorted_copy(keys));
}

// The headline scenario: a node dies mid-sort, after the bitonic phase has
// started, and the run still completes with a fully sorted result — on both
// executors, deterministically.
TEST(Recovery, SingleDeathMidSortRecovers) {
  const cube::Dim n = 3;
  const sim::SimTime t0 = baseline_makespan(n, 400);
  ASSERT_GT(t0, 0.0);

  util::Rng rng(21);
  const auto keys = sort::gen_uniform(400, rng);
  const auto expected = sorted_copy(keys);

  for (const auto exec :
       {core::Executor::Sequential, core::Executor::Threaded}) {
    core::SortConfig cfg = recovery_config(exec);
    cfg.injector.kill_node_at(5, 0.4 * t0);
    cfg.record_trace = true;
    core::FaultTolerantSorter sorter(n, fault::FaultSet(n), cfg);
    const auto out = sorter.sort(keys);
    EXPECT_EQ(out.sorted, expected);
    ASSERT_EQ(out.report.killed_nodes.size(), 1u);
    EXPECT_EQ(out.report.killed_nodes[0], 5u);
    // The victim did real work before dying: the kill interrupted a run in
    // progress, not a node that never started.
    EXPECT_GT(out.report.node_clocks[5], 0.0);
    EXPECT_GE(out.report.timeouts, 1u);
    EXPECT_NE(out.trace.find("kill"), std::string::npos);
  }
}

TEST(Recovery, DeterministicAcrossRepeatsAndExecutors) {
  const cube::Dim n = 3;
  const sim::SimTime t0 = baseline_makespan(n, 256);
  util::Rng rng(22);
  const auto keys = sort::gen_uniform(256, rng);

  const auto run = [&](core::Executor exec) {
    core::SortConfig cfg = recovery_config(exec);
    cfg.injector.kill_node_at(6, 0.5 * t0);
    core::FaultTolerantSorter sorter(n, fault::FaultSet(n), cfg);
    return sorter.sort(keys);
  };

  const auto s1 = run(core::Executor::Sequential);
  const auto s2 = run(core::Executor::Sequential);
  const auto t1 = run(core::Executor::Threaded);

  EXPECT_EQ(s1.sorted, s2.sorted);
  EXPECT_EQ(s1.sorted, t1.sorted);
  EXPECT_DOUBLE_EQ(s1.report.makespan, s2.report.makespan);
  EXPECT_DOUBLE_EQ(s1.report.makespan, t1.report.makespan);
  EXPECT_EQ(s1.report.messages, t1.report.messages);
  EXPECT_EQ(s1.report.key_hops, t1.report.key_hops);
  EXPECT_EQ(s1.report.node_clocks, t1.report.node_clocks);
  EXPECT_EQ(s1.report.killed_nodes, t1.report.killed_nodes);
}

TEST(Recovery, DeathBeforeFirstExchangeUsesScatterRecord) {
  // Killed at t=0: the victim completes no exchange, so no witness exists
  // and salvage falls back on the coordinator's scatter record.
  util::Rng rng(23);
  const auto keys = sort::gen_uniform(256, rng);
  core::SortConfig cfg = recovery_config();
  cfg.injector.kill_node_at(3, 0.0);
  core::FaultTolerantSorter sorter(3, fault::FaultSet(3), cfg);
  const auto out = sorter.sort(keys);
  EXPECT_EQ(out.sorted, sorted_copy(keys));
  ASSERT_EQ(out.report.killed_nodes, (std::vector<cube::NodeId>{3}));
}

TEST(Recovery, DeathOnTopOfStaticFaultRecovers) {
  // One diagnosed fault plus one mid-run death: the grown set has r = 2 in
  // Q_3 — still within the paper's r <= n-1 bound, so recovery succeeds.
  const cube::Dim n = 3;
  util::Rng rng(24);
  const auto keys = sort::gen_uniform(300, rng);
  core::SortConfig probe = recovery_config();
  core::FaultTolerantSorter probe_sorter(n, fault::FaultSet(n, {1}), probe);
  const sim::SimTime t0 = probe_sorter.sort(keys).report.makespan;

  core::SortConfig cfg = recovery_config();
  cfg.injector.kill_node_at(6, 0.5 * t0);
  core::FaultTolerantSorter sorter(n, fault::FaultSet(n, {1}), cfg);
  const auto out = sorter.sort(keys);
  EXPECT_EQ(out.sorted, sorted_copy(keys));
}

TEST(Recovery, SecondDeathDuringRestartedAttempt) {
  // Kill once mid-attempt-0; measure the one-death makespan; then add a
  // second kill placed inside the restarted attempt. Wherever it lands —
  // re-sort, roll call, or past its commit point — the output must stay a
  // sorted permutation of the input.
  const cube::Dim n = 3;
  const sim::SimTime t0 = baseline_makespan(n, 320);
  util::Rng rng(25);
  const auto keys = sort::gen_uniform(320, rng);

  core::SortConfig one = recovery_config();
  one.injector.kill_node_at(5, 0.4 * t0);
  core::FaultTolerantSorter s1(n, fault::FaultSet(n), one);
  const auto out1 = s1.sort(keys);
  ASSERT_EQ(out1.sorted, sorted_copy(keys));
  const sim::SimTime m1 = out1.report.makespan;

  core::SortConfig two = recovery_config();
  two.injector.kill_node_at(5, 0.4 * t0);
  two.injector.kill_node_at(3, m1 - 0.3 * t0);
  core::FaultTolerantSorter s2(n, fault::FaultSet(n), two);
  const auto out2 = s2.sort(keys);
  EXPECT_EQ(out2.sorted, sorted_copy(keys));
  EXPECT_EQ(out2.report.killed_nodes,
            (std::vector<cube::NodeId>{3, 5}));
}

TEST(Recovery, CoordinatorDeathDegradesGracefully) {
  // Node 0 is the coordinator (lowest healthy address); killing it mid-run
  // leaves nobody to issue verdicts, which must surface as a
  // DegradationError, not a hang.
  const cube::Dim n = 3;
  const sim::SimTime t0 = baseline_makespan(n, 256);
  util::Rng rng(26);
  const auto keys = sort::gen_uniform(256, rng);
  core::SortConfig cfg = recovery_config();
  cfg.injector.kill_node_at(0, 0.4 * t0);
  core::FaultTolerantSorter sorter(n, fault::FaultSet(n), cfg);
  try {
    sorter.sort(keys);
    FAIL() << "expected DegradationError";
  } catch (const core::DegradationError& e) {
    EXPECT_NE(std::string(e.what()).find("graceful degradation"),
              std::string::npos);
  }
}

TEST(Recovery, UnrecoverableFaultLoadDegradesGracefully) {
  // Q_2 tolerates r <= 1: two deaths on top of a fault-free Q_2 still
  // partition, but killing until only one healthy node remains cannot.
  // Easier to force: Q_2 with one static fault, then kill two more nodes —
  // the grown set isolates/overloads the 2-cube.
  const cube::Dim n = 2;
  const sim::SimTime t0 = baseline_makespan(n, 64);
  util::Rng rng(27);
  const auto keys = sort::gen_uniform(64, rng);
  core::SortConfig cfg = recovery_config();
  cfg.injector.kill_node_at(1, 0.3 * t0);
  cfg.injector.kill_node_at(2, 0.3 * t0);
  cfg.injector.kill_node_at(3, 0.3 * t0);
  core::FaultTolerantSorter sorter(n, fault::FaultSet(n), cfg);
  EXPECT_THROW(sorter.sort(keys), core::DegradationError);
}

// Property sweep: random victims at random times. Every run must end in
// one of exactly two ways — a sorted permutation of the input, or a
// DegradationError that names its cause. No hangs, no corruption.
TEST(Recovery, RandomInjectionSweepSortsOrDegrades) {
  const cube::Dim n = 3;
  const sim::SimTime t0 = baseline_makespan(n, 200);
  std::size_t recovered = 0;
  std::size_t degraded = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    util::Rng rng(seed);
    const auto keys = sort::gen_uniform(200, rng);
    core::SortConfig cfg = recovery_config();
    const auto victim =
        static_cast<cube::NodeId>(rng.below(cube::num_nodes(n)));
    const double frac = 0.05 + 0.9 * rng.uniform01();
    cfg.injector.kill_node_at(victim, frac * t0);
    core::FaultTolerantSorter sorter(n, fault::FaultSet(n), cfg);
    try {
      const auto out = sorter.sort(keys);
      EXPECT_EQ(out.sorted, sorted_copy(keys)) << "seed " << seed;
      ++recovered;
    } catch (const core::DegradationError& e) {
      EXPECT_NE(std::string(e.what()).find("graceful degradation"),
                std::string::npos)
          << "seed " << seed;
      ++degraded;
    }
  }
  // A single non-coordinator death in a fault-free Q_3 is always
  // recoverable; only coordinator kills may degrade.
  EXPECT_GT(recovered, 0u);
  EXPECT_EQ(recovered + degraded, 40u);
}

}  // namespace
}  // namespace ftsort
