// Universe sampling properties (campaign/universe.hpp): the statistical
// engine is only as trustworthy as its sampler, so the sampling
// discipline is pinned as properties over many seeds — r bounds, event
// distinctness, the nested-prefix coupling, the coordinator-witness
// guard, the injection-time envelope — plus a golden pin on the seed
// derivation itself (changing it silently would invalidate the replay
// contract of every recorded campaign).
#include <gtest/gtest.h>

#include <set>
#include <utility>
#include <vector>

#include "campaign/universe.hpp"
#include "hypercube/address.hpp"

namespace ftsort {
namespace {

using campaign::FaultEvent;

campaign::UniverseConfig universe(cube::Dim n, std::size_t r_max,
                                  std::uint32_t scenarios) {
  campaign::UniverseConfig cfg;
  cfg.n = n;
  cfg.r_max = r_max;
  cfg.scenarios = scenarios;
  return cfg;
}

constexpr sim::SimTime kEnvelope = 1000.0;

TEST(CampaignProperties, TrialsRespectRBoundsAndIndexArithmetic) {
  const campaign::UniverseConfig cfg = universe(4, 3, 6);
  ASSERT_EQ(cfg.buckets(), 4u);
  ASSERT_EQ(cfg.trials(), 24u);
  for (std::uint64_t seed : {1ull, 42ull, 20260807ull}) {
    for (std::uint32_t idx = 0; idx < cfg.trials(); ++idx) {
      const campaign::TrialSpec spec =
          campaign::sample_trial(cfg, seed, idx, kEnvelope);
      EXPECT_EQ(spec.index, idx);
      EXPECT_EQ(spec.scenario, idx / cfg.buckets());
      EXPECT_EQ(spec.r, idx % cfg.buckets());
      EXPECT_LE(spec.r, cfg.r_max);
      EXPECT_EQ(spec.events.size(), spec.r);
    }
  }
}

TEST(CampaignProperties, EventsAreDistinctAndWellFormed) {
  const campaign::UniverseConfig cfg = universe(5, 4, 40);
  const auto num_nodes = cube::num_nodes(cfg.n);
  for (std::uint32_t s = 0; s < cfg.scenarios; ++s) {
    const std::vector<FaultEvent> events =
        campaign::sample_scenario(cfg, 97, s, kEnvelope);
    ASSERT_EQ(events.size(), cfg.r_max);
    std::set<cube::NodeId> victims;
    std::set<std::pair<cube::NodeId, cube::NodeId>> cuts;
    for (const FaultEvent& ev : events) {
      EXPECT_LT(ev.a, num_nodes);
      EXPECT_LT(ev.b, num_nodes);
      if (ev.kind == FaultEvent::Kind::NodeKill) {
        EXPECT_EQ(ev.a, ev.b);
        EXPECT_TRUE(victims.insert(ev.a).second)
            << "duplicate kill victim " << ev.a;
      } else {
        // A real cube edge, endpoints stored low address first.
        EXPECT_LT(ev.a, ev.b);
        const cube::NodeId diff = ev.a ^ ev.b;
        EXPECT_EQ(diff & (diff - 1), 0u) << "not a hypercube edge";
        EXPECT_TRUE(cuts.insert({ev.a, ev.b}).second)
            << "duplicate cut " << ev.a << "-" << ev.b;
      }
    }
  }
}

TEST(CampaignProperties, InjectionTimesFallInsideTheEnvelope) {
  const campaign::UniverseConfig cfg = universe(4, 3, 30);
  for (const sim::SimTime envelope : {250.0, 1000.0, 31337.5}) {
    for (std::uint32_t idx = 0; idx < cfg.trials(); ++idx) {
      const campaign::TrialSpec spec =
          campaign::sample_trial(cfg, 7, idx, envelope);
      EXPECT_EQ(spec.envelope, envelope);
      for (const FaultEvent& ev : spec.events) {
        EXPECT_GE(ev.when, 0.0);
        EXPECT_LT(ev.when, envelope);
      }
    }
  }
}

// The common-random-numbers coupling: bucket r of a scenario injects
// exactly the first r events of the scenario's full sequence, and every
// bucket sorts the same keys.
TEST(CampaignProperties, BucketsAreNestedPrefixesSharingKeys) {
  const campaign::UniverseConfig cfg = universe(5, 3, 12);
  for (std::uint32_t s = 0; s < cfg.scenarios; ++s) {
    const std::vector<FaultEvent> full =
        campaign::sample_scenario(cfg, 11, s, kEnvelope);
    std::uint64_t keys_seed = 0;
    for (std::uint32_t r = 0; r <= cfg.r_max; ++r) {
      const std::uint32_t idx = s * cfg.buckets() + r;
      const campaign::TrialSpec spec =
          campaign::sample_trial(cfg, 11, idx, kEnvelope);
      ASSERT_EQ(spec.events.size(), r);
      for (std::uint32_t i = 0; i < r; ++i)
        EXPECT_EQ(spec.events[i], full[i])
            << "scenario " << s << " bucket " << r << " event " << i;
      if (r == 0)
        keys_seed = spec.keys_seed;
      else
        EXPECT_EQ(spec.keys_seed, keys_seed)
            << "buckets of scenario " << s << " sort different keys";
    }
  }
}

// The coordinator-witness guard predicate itself.
TEST(CampaignProperties, WitnessGuardDetectsAWalledOffRoot) {
  const cube::Dim n = 3;
  // Kill all three neighbours of node 0 -> no witness survives.
  std::vector<FaultEvent> all_killed;
  for (cube::Dim d = 0; d < n; ++d)
    all_killed.push_back({FaultEvent::Kind::NodeKill,
                          cube::NodeId{1} << d, cube::NodeId{1} << d, 1.0});
  EXPECT_FALSE(campaign::root_witness_survives(n, all_killed));

  // Mixed kills and root-link cuts covering every witness -> walled off.
  const std::vector<FaultEvent> mixed = {
      {FaultEvent::Kind::NodeKill, 1, 1, 1.0},
      {FaultEvent::Kind::LinkCut, 0, 2, 2.0},
      {FaultEvent::Kind::LinkCut, 0, 4, 3.0},
  };
  EXPECT_FALSE(campaign::root_witness_survives(n, mixed));

  // One surviving witness is enough.
  std::vector<FaultEvent> two_killed(all_killed.begin(),
                                     all_killed.end() - 1);
  EXPECT_TRUE(campaign::root_witness_survives(n, two_killed));

  // Cuts elsewhere in the cube do not touch the witness set.
  const std::vector<FaultEvent> far_cuts = {
      {FaultEvent::Kind::LinkCut, 3, 7, 1.0},
      {FaultEvent::Kind::LinkCut, 5, 7, 2.0},
      {FaultEvent::Kind::LinkCut, 6, 7, 3.0},
  };
  EXPECT_TRUE(campaign::root_witness_survives(n, far_cuts));

  // Killing node 0 itself does not count against its witnesses.
  const std::vector<FaultEvent> root_killed = {
      {FaultEvent::Kind::NodeKill, 0, 0, 1.0},
  };
  EXPECT_TRUE(campaign::root_witness_survives(n, root_killed));
}

// For r_max < n the guard is structurally vacuous (fewer faults than
// witnesses): every sampled full sequence must already pass it, i.e. the
// sampler never rejects and the root keeps a live witness in every
// scenario of every seed swept here.
TEST(CampaignProperties, RootWitnessesSurviveWheneverRBelowN) {
  for (const cube::Dim n : {3, 4, 5}) {
    const campaign::UniverseConfig cfg =
        universe(n, static_cast<std::size_t>(n) - 1, 25);
    for (std::uint64_t seed = 1; seed <= 12; ++seed)
      for (std::uint32_t s = 0; s < cfg.scenarios; ++s) {
        const std::vector<FaultEvent> events =
            campaign::sample_scenario(cfg, seed, s, kEnvelope);
        EXPECT_TRUE(campaign::root_witness_survives(cfg.n, events))
            << "n=" << n << " seed=" << seed << " scenario=" << s;
      }
  }
}

// r_max >= n universes stay non-degenerate: the guard actually rejects
// and redraws, so sampled sequences still leave a witness.
TEST(CampaignProperties, GuardKeepsDenseUniversesMeaningful) {
  campaign::UniverseConfig cfg = universe(3, 6, 50);
  cfg.link_cut_probability = 0.5;  // more root-link cuts in the mix
  for (std::uint64_t seed = 1; seed <= 8; ++seed)
    for (std::uint32_t s = 0; s < cfg.scenarios; ++s) {
      const std::vector<FaultEvent> events =
          campaign::sample_scenario(cfg, seed, s, kEnvelope);
      ASSERT_EQ(events.size(), cfg.r_max);
      EXPECT_TRUE(campaign::root_witness_survives(cfg.n, events));
    }
}

// Sampling is a pure function of (cfg, seed, index, envelope).
TEST(CampaignProperties, SamplingIsDeterministic) {
  const campaign::UniverseConfig cfg = universe(5, 3, 10);
  for (std::uint32_t idx = 0; idx < cfg.trials(); ++idx)
    EXPECT_EQ(campaign::sample_trial(cfg, 123, idx, kEnvelope),
              campaign::sample_trial(cfg, 123, idx, kEnvelope));
}

// Golden pin on the seed stream. These exact values back the replay
// contract of every recorded campaign: if this test breaks, schema v4
// reports written before the change can no longer be replayed, so the
// change must bump the schema version, not just update the pins.
TEST(CampaignProperties, ScenarioSeedStreamIsPinned) {
  EXPECT_EQ(campaign::scenario_seed(0, 0, 0), 0xf6bbb7726f63c218ull);
  EXPECT_EQ(campaign::scenario_seed(1, 0, 0), 0x3c3d7dbcd3fc5a8eull);
  EXPECT_EQ(campaign::scenario_seed(1, 1, 0), 0x6f797d2dd3b15031ull);
  EXPECT_EQ(campaign::scenario_seed(1, 0, 1), 0xa66dd4e6428337feull);
  EXPECT_EQ(campaign::scenario_seed(20260807, 41, 0),
            0xe7980fc73fa84a4full);
}

}  // namespace
}  // namespace ftsort
