// Unit tests for key distribution, gathering, and workload generators.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "sort/distribution.hpp"
#include "sort/sequential.hpp"
#include "util/rng.hpp"

namespace ftsort::sort {
namespace {

TEST(Distribute, EqualBlocksWithDummyPadding) {
  // The paper's Fig. 6 workload: 47 keys over 24 live processors -> blocks
  // of 2 with one dummy.
  std::vector<Key> keys(47);
  for (std::size_t i = 0; i < keys.size(); ++i)
    keys[i] = static_cast<Key>(i);
  const auto dist = distribute_evenly(keys, 24);
  EXPECT_EQ(dist.block_size, 2u);
  ASSERT_EQ(dist.blocks.size(), 24u);
  std::size_t dummies = 0;
  std::size_t real = 0;
  for (const auto& block : dist.blocks) {
    EXPECT_EQ(block.size(), 2u);
    for (Key k : block) (k == sim::kDummyKey ? dummies : real)++;
  }
  EXPECT_EQ(real, 47u);
  EXPECT_EQ(dummies, 1u);
}

TEST(Distribute, ExactDivisionHasNoDummies) {
  const auto keys = gen_sorted(32);
  const auto dist = distribute_evenly(keys, 8);
  EXPECT_EQ(dist.block_size, 4u);
  for (const auto& block : dist.blocks)
    for (Key k : block) EXPECT_NE(k, sim::kDummyKey);
}

TEST(Distribute, EmptyKeysGiveEmptyBlocks) {
  const std::vector<Key> none;
  const auto dist = distribute_evenly(none, 4);
  EXPECT_EQ(dist.block_size, 0u);
  for (const auto& block : dist.blocks) EXPECT_TRUE(block.empty());
}

TEST(Distribute, FewerKeysThanSlots) {
  const auto keys = gen_sorted(3);
  const auto dist = distribute_evenly(keys, 8);
  EXPECT_EQ(dist.block_size, 1u);
  std::size_t real = 0;
  for (const auto& block : dist.blocks)
    for (Key k : block)
      if (k != sim::kDummyKey) ++real;
  EXPECT_EQ(real, 3u);
}

TEST(Distribute, RejectsZeroSlots) {
  const auto keys = gen_sorted(4);
  EXPECT_THROW(distribute_evenly(keys, 0), ContractViolation);
}

TEST(GatherAndStrip, RoundTripsDistribution) {
  util::Rng rng(1);
  const auto keys = gen_uniform(53, rng);
  const auto dist = distribute_evenly(keys, 12);
  EXPECT_EQ(gather_and_strip(dist.blocks), keys);  // order preserved
}

TEST(GatherAndStrip, DropsAllDummies) {
  const std::vector<std::vector<Key>> blocks{
      {1, sim::kDummyKey}, {sim::kDummyKey}, {2, 3}};
  EXPECT_EQ(gather_and_strip(blocks), (std::vector<Key>{1, 2, 3}));
}

TEST(Generators, UniformStaysBelowDummy) {
  util::Rng rng(2);
  for (Key k : gen_uniform(1000, rng)) {
    EXPECT_GE(k, 0);
    EXPECT_LT(k, sim::kDummyKey);
  }
}

TEST(Generators, SortedAndReverseShapes) {
  EXPECT_TRUE(is_ascending(gen_sorted(100)));
  auto rev = gen_reverse(100);
  std::reverse(rev.begin(), rev.end());
  EXPECT_TRUE(is_ascending(rev));
}

TEST(Generators, FewDistinctHasAtMostKValues) {
  util::Rng rng(3);
  const auto keys = gen_few_distinct(500, 4, rng);
  const std::set<Key> unique(keys.begin(), keys.end());
  EXPECT_LE(unique.size(), 4u);
}

TEST(Generators, OrganPipeRisesThenFalls) {
  const auto keys = gen_organ_pipe(10);
  EXPECT_EQ(keys.front(), 0);
  EXPECT_EQ(keys.back(), 0);
  const auto peak = std::max_element(keys.begin(), keys.end());
  EXPECT_TRUE(is_ascending({keys.begin(), peak + 1}));
}

TEST(Generators, NearlySortedDiffersSlightly) {
  util::Rng rng(4);
  const auto keys = gen_nearly_sorted(100, 3, rng);
  const auto clean = gen_sorted(100);
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < 100; ++i)
    if (keys[i] != clean[i]) ++mismatches;
  EXPECT_LE(mismatches, 6u);  // 3 swaps touch at most 6 positions
  auto sorted = keys;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, clean);  // same multiset
}

}  // namespace
}  // namespace ftsort::sort
