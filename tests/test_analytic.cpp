// The paper's closed-form worst-case T (§3) against the simulator: the
// formula must upper-bound (and track the scaling of) the literal
// FullSort-mode simulation it describes.
#include <gtest/gtest.h>

#include "baseline/mfs_sorter.hpp"
#include "core/analytic.hpp"
#include "core/ft_sorter.hpp"
#include "fault/scenario.hpp"
#include "sort/distribution.hpp"
#include "util/rng.hpp"

namespace ftsort::core {
namespace {

TEST(Analytic, TermsArePositiveAndSumToTotal) {
  util::Rng rng(1);
  const auto faults = fault::random_faults(6, 4, rng);
  const auto plan = partition::Plan::build(faults);
  const auto breakdown =
      predicted_sort_time(plan, 100'000, sim::CostModel::ncube7());
  EXPECT_GT(breakdown.heapsort, 0.0);
  EXPECT_GT(breakdown.intra_sort, 0.0);
  EXPECT_GT(breakdown.inter_exchange, 0.0);
  EXPECT_GT(breakdown.inter_resort, 0.0);
  EXPECT_DOUBLE_EQ(breakdown.total,
                   breakdown.heapsort + breakdown.intra_sort +
                       breakdown.inter_exchange + breakdown.inter_resort);
}

TEST(Analytic, NoInterTermsForSingleFault) {
  const auto plan = partition::Plan::build(fault::FaultSet(5, {9}));
  const auto breakdown =
      predicted_sort_time(plan, 10'000, sim::CostModel::ncube7());
  EXPECT_DOUBLE_EQ(breakdown.inter_exchange, 0.0);
  EXPECT_DOUBLE_EQ(breakdown.inter_resort, 0.0);
}

TEST(Analytic, FormulaUpperBoundsFullSortSimulation) {
  // T is a worst-case bound: every node is charged every term, while the
  // simulated makespan is the actual critical path. Check both the bound
  // and its tightness (within 4x) across (n, r).
  util::Rng rng(2);
  SortConfig config;
  config.step8 = Step8Mode::FullSort;
  for (cube::Dim n = 4; n <= 6; ++n) {
    for (std::size_t r = 1; r + 1 <= static_cast<std::size_t>(n); ++r) {
      const auto faults = fault::random_faults(n, r, rng);
      FaultTolerantSorter sorter(n, faults, config);
      const std::uint64_t keys_count = 20'000;
      const auto keys = sort::gen_uniform(keys_count, rng);
      const double simulated = sorter.sort(keys).report.makespan;
      const double predicted =
          predicted_sort_time(sorter.plan(), keys_count, config.cost)
              .total;
      EXPECT_LE(simulated, predicted * 1.05)
          << "n=" << n << " r=" << r;
      EXPECT_GE(simulated, predicted / 4.0)
          << "n=" << n << " r=" << r;
    }
  }
}

TEST(Analytic, BaselineFormulaTracksSimulation) {
  util::Rng rng(3);
  for (cube::Dim t = 3; t <= 6; ++t) {
    const std::uint64_t keys_count = 64'000;
    const auto keys = sort::gen_uniform(keys_count, rng);
    const auto result =
        baseline::mfs_bitonic_sort(t, fault::FaultSet(t), keys);
    const double predicted =
        predicted_baseline_time(t, keys_count, sim::CostModel::ncube7());
    EXPECT_LE(result.report.makespan, predicted * 1.05) << "t=" << t;
    EXPECT_GE(result.report.makespan, predicted / 4.0) << "t=" << t;
  }
}

TEST(Analytic, AsymptoticClaimMLogMOverN) {
  // §3: for M >> N the cost approaches (M/N') log (M/N') t_c. The
  // heapsort term must dominate all communication terms as M grows with
  // fixed n.
  const auto plan = partition::Plan::build(fault::FaultSet(6, {0, 21}));
  const auto cost = sim::CostModel::ncube7();
  const auto small = predicted_sort_time(plan, 1u << 14, cost);
  const auto huge = predicted_sort_time(plan, 1u << 26, cost);
  const double small_frac = small.heapsort / small.total;
  const double huge_frac = huge.heapsort / huge.total;
  EXPECT_GT(huge_frac, small_frac);
  // Superlinear (b log b) heapsort vs linear communication: growing M by
  // 2^12 grows the heapsort term strictly faster than the wire terms.
  EXPECT_GT(huge.heapsort / small.heapsort,
            1.2 * huge.inter_exchange / small.inter_exchange);
}

TEST(Analytic, PredictionsScaleLinearlyInBlockSize) {
  const auto plan = partition::Plan::build(fault::FaultSet(5, {1, 2, 4}));
  const auto cost = sim::CostModel::ncube7();
  const double t1 = predicted_sort_time(plan, 40'000, cost).inter_exchange;
  const double t2 = predicted_sort_time(plan, 80'000, cost).inter_exchange;
  EXPECT_NEAR(t2 / t1, 2.0, 0.01);
}

}  // namespace
}  // namespace ftsort::core
