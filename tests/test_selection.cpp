// Unit tests for the heuristic selection of D_β and dangling processors.
#include <gtest/gtest.h>

#include "fault/scenario.hpp"
#include "partition/plan.hpp"
#include "partition/selection.hpp"
#include "util/rng.hpp"

namespace ftsort::partition {
namespace {

const fault::FaultSet& paper_faults() {
  static const fault::FaultSet faults(5, {3, 5, 16, 24});
  return faults;
}

TEST(ExtraOverhead, PaperExample2PerSequenceCosts) {
  // Example 2: costs of D_1..D_5 are 3, 3, 4, 3, 3.
  const std::vector<std::vector<cube::Dim>> psi{
      {0, 1, 3}, {0, 2, 3}, {1, 2, 3}, {1, 3, 4}, {2, 3, 4}};
  const std::vector<int> expected_costs{3, 3, 4, 3, 3};
  for (std::size_t i = 0; i < psi.size(); ++i) {
    const cube::CutSplit split(5, psi[i]);
    EXPECT_EQ(extra_overhead(paper_faults(), split).total,
              expected_costs[i])
        << "D_" << i + 1;
  }
}

TEST(ExtraOverhead, PaperExample2PerDimensionProfile) {
  // D_1 = (0,1,3): h = (2, 1, 0) -> Σ max(h_i) = 3.
  const cube::CutSplit split(5, {0, 1, 3});
  const auto profile = extra_overhead(paper_faults(), split);
  ASSERT_EQ(profile.h.size(), 3u);
  EXPECT_EQ(profile.h[0], 2);
  EXPECT_EQ(profile.h[1], 1);
  EXPECT_EQ(profile.h[2], 0);
}

TEST(ExtraOverhead, ZeroWhenFaultsAlign) {
  // Two faults with identical local addresses: re-indexing is the same in
  // both subcubes, so no extra hops.
  const fault::FaultSet faults(3, {0b000, 0b001});  // differ only in dim 0
  const cube::CutSplit split(3, {0});
  EXPECT_EQ(extra_overhead(faults, split).total, 0);
}

TEST(ExtraOverhead, RejectsNonSingleFaultSplit) {
  const fault::FaultSet faults(3, {0, 2});  // differ in dim 1 only
  const cube::CutSplit split(3, {0});       // does not separate them
  EXPECT_THROW(extra_overhead(faults, split), ContractViolation);
}

TEST(SelectSequence, PicksFirstMinimumInPsiOrder) {
  const auto search = find_cutting_set(paper_faults());
  const auto selection = select_sequence(paper_faults(),
                                         search.cutting_set);
  // Example 2 selects D_β = D_1 = (0, 1, 3) at cost 3.
  EXPECT_EQ(selection.cuts, (std::vector<cube::Dim>{0, 1, 3}));
  EXPECT_EQ(selection.overhead.total, 3);
  EXPECT_EQ(selection.beta, 0u);
}

TEST(SelectSequence, SelectionNeverWorseThanAnyCandidate) {
  util::Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const auto faults = fault::random_faults(6, 4, rng);
    const auto search = find_cutting_set(faults);
    const auto selection = select_sequence(faults, search.cutting_set);
    for (const auto& cuts : search.cutting_set) {
      const cube::CutSplit split(6, cuts);
      EXPECT_LE(selection.overhead.total,
                extra_overhead(faults, split).total);
    }
  }
}

TEST(SelectSequence, RejectsEmptyCuttingSet) {
  EXPECT_THROW(select_sequence(paper_faults(), {}), ContractViolation);
}

TEST(MostFrequentFaultLocal, PaperExample2DanglingAddress) {
  // Faults' local addresses under D_1: {00, 01, 10, 10} -> dangling 10.
  const cube::CutSplit split(5, {0, 1, 3});
  EXPECT_EQ(most_frequent_fault_local(paper_faults(), split), 0b10u);
}

TEST(MostFrequentFaultLocal, TiesBreakTowardSmallest) {
  const fault::FaultSet faults(3, {0b000, 0b011});
  const cube::CutSplit split(3, {0});  // locals: w = {u2 u1}: 00 and 01
  EXPECT_EQ(most_frequent_fault_local(faults, split), 0b00u);
}

TEST(MostFrequentFaultLocal, RequiresFaults) {
  const cube::CutSplit split(3, {0});
  EXPECT_THROW(most_frequent_fault_local(fault::FaultSet(3), split),
               ContractViolation);
}

TEST(Plan, PaperExample2DanglingGlobalAddresses) {
  const Plan plan = Plan::build(paper_faults());
  EXPECT_EQ(plan.selection().cuts, (std::vector<cube::Dim>{0, 1, 3}));
  EXPECT_EQ(plan.dangling_addresses(),
            (std::vector<cube::NodeId>{18, 25, 26, 27}));
  EXPECT_EQ(plan.dangling_count(), 4u);
  EXPECT_EQ(plan.live_count(), 24u);
}

TEST(Plan, RolesPartitionTheMachine) {
  util::Rng rng(2);
  for (int trial = 0; trial < 30; ++trial) {
    const auto faults = fault::random_faults(5, 3, rng);
    const Plan plan = Plan::build(faults);
    std::size_t live = 0;
    for (cube::NodeId u = 0; u < 32; ++u) {
      const auto role = plan.role_of(u);
      EXPECT_EQ(plan.physical(role.v, role.logical_w), u);
      if (role.live) {
        ++live;
        EXPECT_FALSE(faults.is_faulty(u));
      }
    }
    EXPECT_EQ(live, plan.live_count());
  }
}

TEST(Plan, DeadNodesAreFaultsOrDanglings) {
  util::Rng rng(3);
  const auto faults = fault::random_faults(6, 5, rng);
  const Plan plan = Plan::build(faults);
  ASSERT_TRUE(plan.has_dead());
  std::size_t fault_subcubes = 0;
  for (cube::NodeId v = 0; v < plan.num_subcubes(); ++v) {
    const cube::NodeId dead_global =
        plan.split().global_address(v, plan.dead_w(v));
    if (plan.dead_is_fault(v)) {
      ++fault_subcubes;
      EXPECT_TRUE(faults.is_faulty(dead_global));
    } else {
      EXPECT_FALSE(faults.is_faulty(dead_global));
    }
    // Dead node re-indexes to logical 0.
    EXPECT_EQ(plan.role_of(dead_global).logical_w, 0u);
    EXPECT_FALSE(plan.role_of(dead_global).live);
  }
  EXPECT_EQ(fault_subcubes, faults.count());
}

TEST(Plan, FaultFreePlanHasNoDeadNodes) {
  const Plan plan = Plan::build(fault::FaultSet(4));
  EXPECT_FALSE(plan.has_dead());
  EXPECT_EQ(plan.live_count(), 16u);
  EXPECT_EQ(plan.dangling_count(), 0u);
  EXPECT_DOUBLE_EQ(plan.utilization_percent(), 100.0);
}

TEST(Plan, SingleFaultPlanUsesWholeCube) {
  const Plan plan = Plan::build(fault::FaultSet(4, {11}));
  EXPECT_EQ(plan.m(), 0);
  EXPECT_TRUE(plan.has_dead());
  EXPECT_EQ(plan.live_count(), 15u);
  EXPECT_EQ(plan.dangling_count(), 0u);
  EXPECT_DOUBLE_EQ(plan.utilization_percent(), 100.0);
}

TEST(Plan, TwoFaultsZeroDangling) {
  // The paper's flagship case: two faults -> two half-cubes, each with one
  // fault, no dangling processor, 100% utilisation.
  util::Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    const auto faults = fault::random_faults(6, 2, rng);
    const Plan plan = Plan::build(faults);
    EXPECT_EQ(plan.m(), 1);
    EXPECT_EQ(plan.dangling_count(), 0u);
    EXPECT_DOUBLE_EQ(plan.utilization_percent(), 100.0);
  }
}

TEST(Plan, WorstCaseDanglingBelowQuarter) {
  // The paper's bound: fewer than N/4 danglings for r <= n-1.
  util::Rng rng(5);
  for (cube::Dim n = 3; n <= 6; ++n)
    for (int trial = 0; trial < 50; ++trial) {
      const auto faults =
          fault::random_faults(n, static_cast<std::size_t>(n - 1), rng);
      const Plan plan = Plan::build(faults);
      EXPECT_LE(plan.dangling_count(), cube::num_nodes(n) / 4);
    }
}

TEST(Plan, BuildWithCutsHonoursGivenSequence) {
  const Plan plan =
      Plan::build_with_cuts(paper_faults(), {2, 3, 4});
  EXPECT_EQ(plan.selection().cuts, (std::vector<cube::Dim>{2, 3, 4}));
  EXPECT_EQ(plan.m(), 3);
}

TEST(Plan, BuildWithCutsRejectsInvalidSequence) {
  EXPECT_THROW(Plan::build_with_cuts(paper_faults(), {4}),
               ContractViolation);
}

TEST(Plan, ToStringMentionsKeyQuantities) {
  const Plan plan = Plan::build(paper_faults());
  const std::string s = plan.to_string();
  EXPECT_NE(s.find("Q_5"), std::string::npos);
  EXPECT_NE(s.find("mincut=3"), std::string::npos);
  EXPECT_NE(s.find("dangling=4"), std::string::npos);
}

}  // namespace
}  // namespace ftsort::partition
