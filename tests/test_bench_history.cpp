// util::append_history_line — the BENCH_history.jsonl rotation shared by
// bench_harness and the ftdiag history trend gate.
//
// The rotation runs inside the bench binary where a mistake silently
// eats the perf trajectory, so its contract is pinned here: seed-on-
// missing, last-N trim in append order, never clobber an unreadable
// file, and report (not throw) on an unwritable path.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "util/history.hpp"

namespace ftsort {
namespace {

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  return lines;
}

TEST(BenchHistoryRotation, MissingFileSeedsANewTrajectory) {
  const std::string path = "history_test_seed.jsonl";
  std::filesystem::remove(path);
  const util::HistoryAppendResult res =
      util::append_history_line(path, "{\"run\": 1}");
  EXPECT_TRUE(res.rotated);
  EXPECT_FALSE(res.unreadable);
  EXPECT_EQ(res.entries, 1u);
  EXPECT_EQ(read_lines(path), std::vector<std::string>{"{\"run\": 1}"});
  std::filesystem::remove(path);
}

TEST(BenchHistoryRotation, KeepsTheNewestCapLinesInAppendOrder) {
  const std::string path = "history_test_cap.jsonl";
  std::filesystem::remove(path);
  for (int i = 0; i < 7; ++i) {
    const util::HistoryAppendResult res = util::append_history_line(
        path, "{\"run\": " + std::to_string(i) + "}", /*cap=*/5);
    ASSERT_TRUE(res.rotated);
    EXPECT_EQ(res.entries, static_cast<std::size_t>(std::min(i + 1, 5)));
  }
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 5u);
  EXPECT_EQ(lines.front(), "{\"run\": 2}");  // 0 and 1 trimmed, oldest first
  EXPECT_EQ(lines.back(), "{\"run\": 6}");
  std::filesystem::remove(path);
}

TEST(BenchHistoryRotation, DefaultCapMatchesTheHarness) {
  // bench_harness relies on the default; the trend gate reads ~the last
  // handful, so 500 is comfortably "the recent trajectory".
  EXPECT_EQ(util::kHistoryCap, 500u);

  const std::string path = "history_test_defaultcap.jsonl";
  std::filesystem::remove(path);
  {
    std::ofstream out(path);
    for (std::size_t i = 0; i < util::kHistoryCap + 10; ++i)
      out << "{\"run\": " << i << "}\n";
  }
  const util::HistoryAppendResult res =
      util::append_history_line(path, "{\"run\": \"new\"}");
  ASSERT_TRUE(res.rotated);
  EXPECT_EQ(res.entries, util::kHistoryCap);
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), util::kHistoryCap);
  EXPECT_EQ(lines.back(), "{\"run\": \"new\"}");
  // The oldest 11 (510 existing + 1 new - 500 kept) are gone.
  EXPECT_EQ(lines.front(), "{\"run\": 11}");
  std::filesystem::remove(path);
}

TEST(BenchHistoryRotation, DropsEmptyLinesFromCrashedAppends) {
  const std::string path = "history_test_empty.jsonl";
  std::filesystem::remove(path);
  {
    std::ofstream out(path);
    out << "{\"run\": 0}\n\n\n{\"run\": 1}\n";
  }
  const util::HistoryAppendResult res =
      util::append_history_line(path, "{\"run\": 2}");
  ASSERT_TRUE(res.rotated);
  EXPECT_EQ(res.entries, 3u);
  EXPECT_EQ(read_lines(path).size(), 3u);
  std::filesystem::remove(path);
}

TEST(BenchHistoryRotation, NeverClobbersAnUnreadableExistingFile) {
  // A directory at the path: exists() is true, ifstream cannot open it —
  // the unreadable-file shape without permission games (which a root test
  // runner would bypass anyway).
  const std::string path = "history_test_unreadable.jsonl";
  std::filesystem::remove_all(path);
  std::filesystem::create_directory(path);
  const util::HistoryAppendResult res =
      util::append_history_line(path, "{\"run\": 0}");
  EXPECT_FALSE(res.rotated);
  EXPECT_TRUE(res.unreadable);
  EXPECT_TRUE(std::filesystem::is_directory(path));
  std::filesystem::remove_all(path);
}

TEST(BenchHistoryRotation, ReportsAnUnwritablePathInsteadOfThrowing) {
  const util::HistoryAppendResult res = util::append_history_line(
      "history_no_such_dir/history.jsonl", "{\"run\": 0}");
  EXPECT_FALSE(res.rotated);
  EXPECT_FALSE(res.unreadable);
  EXPECT_TRUE(res.write_failed);
}

}  // namespace
}  // namespace ftsort
