// util::append_history_line — the BENCH_history.jsonl rotation shared by
// bench_harness and the ftdiag history trend gate.
//
// The rotation runs inside the bench binary where a mistake silently
// eats the perf trajectory, so its contract is pinned here: seed-on-
// missing, last-N trim in append order, never clobber an unreadable
// file, and report (not throw) on an unwritable path.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "util/history.hpp"

namespace ftsort {
namespace {

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  return lines;
}

TEST(BenchHistoryRotation, MissingFileSeedsANewTrajectory) {
  const std::string path = "history_test_seed.jsonl";
  std::filesystem::remove(path);
  const util::HistoryAppendResult res =
      util::append_history_line(path, "{\"run\": 1}");
  EXPECT_TRUE(res.rotated);
  EXPECT_FALSE(res.unreadable);
  EXPECT_EQ(res.entries, 1u);
  EXPECT_EQ(read_lines(path), std::vector<std::string>{"{\"run\": 1}"});
  std::filesystem::remove(path);
}

TEST(BenchHistoryRotation, KeepsTheNewestCapLinesInAppendOrder) {
  const std::string path = "history_test_cap.jsonl";
  std::filesystem::remove(path);
  for (int i = 0; i < 7; ++i) {
    const util::HistoryAppendResult res = util::append_history_line(
        path, "{\"run\": " + std::to_string(i) + "}", /*cap=*/5);
    ASSERT_TRUE(res.rotated);
    EXPECT_EQ(res.entries, static_cast<std::size_t>(std::min(i + 1, 5)));
  }
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 5u);
  EXPECT_EQ(lines.front(), "{\"run\": 2}");  // 0 and 1 trimmed, oldest first
  EXPECT_EQ(lines.back(), "{\"run\": 6}");
  std::filesystem::remove(path);
}

TEST(BenchHistoryRotation, DefaultCapMatchesTheHarness) {
  // bench_harness relies on the default; the trend gate reads ~the last
  // handful, so 500 is comfortably "the recent trajectory".
  EXPECT_EQ(util::kHistoryCap, 500u);

  const std::string path = "history_test_defaultcap.jsonl";
  std::filesystem::remove(path);
  {
    std::ofstream out(path);
    for (std::size_t i = 0; i < util::kHistoryCap + 10; ++i)
      out << "{\"run\": " << i << "}\n";
  }
  const util::HistoryAppendResult res =
      util::append_history_line(path, "{\"run\": \"new\"}");
  ASSERT_TRUE(res.rotated);
  EXPECT_EQ(res.entries, util::kHistoryCap);
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), util::kHistoryCap);
  EXPECT_EQ(lines.back(), "{\"run\": \"new\"}");
  // The oldest 11 (510 existing + 1 new - 500 kept) are gone.
  EXPECT_EQ(lines.front(), "{\"run\": 11}");
  std::filesystem::remove(path);
}

TEST(BenchHistoryRotation, DropsEmptyLinesFromCrashedAppends) {
  const std::string path = "history_test_empty.jsonl";
  std::filesystem::remove(path);
  {
    std::ofstream out(path);
    out << "{\"run\": 0}\n\n\n{\"run\": 1}\n";
  }
  const util::HistoryAppendResult res =
      util::append_history_line(path, "{\"run\": 2}");
  ASSERT_TRUE(res.rotated);
  EXPECT_EQ(res.entries, 3u);
  EXPECT_EQ(read_lines(path).size(), 3u);
  std::filesystem::remove(path);
}

TEST(BenchHistoryRotation, NeverClobbersAnUnreadableExistingFile) {
  // A directory at the path: exists() is true, ifstream cannot open it —
  // the unreadable-file shape without permission games (which a root test
  // runner would bypass anyway).
  const std::string path = "history_test_unreadable.jsonl";
  std::filesystem::remove_all(path);
  std::filesystem::create_directory(path);
  const util::HistoryAppendResult res =
      util::append_history_line(path, "{\"run\": 0}");
  EXPECT_FALSE(res.rotated);
  EXPECT_TRUE(res.unreadable);
  EXPECT_TRUE(std::filesystem::is_directory(path));
  std::filesystem::remove_all(path);
}

TEST(BenchHistoryRotation, ReportsAnUnwritablePathInsteadOfThrowing) {
  const util::HistoryAppendResult res = util::append_history_line(
      "history_no_such_dir/history.jsonl", "{\"run\": 0}");
  EXPECT_FALSE(res.rotated);
  EXPECT_FALSE(res.unreadable);
  EXPECT_TRUE(res.write_failed);
}

// ---------------------------------------------------------------------------
// crash safety: a bench killed mid-append (SIGKILL, power loss, the
// watchdog's abort) must leave either the old file or the new one — and
// a torn final line from a *previous* non-atomic writer is quarantined,
// not propagated into the rotated trajectory.

TEST(BenchHistoryCrashSafety, TornFinalLineIsSkippedAndFlagged) {
  const std::string path = "history_test_torn.jsonl";
  std::filesystem::remove(path);
  {
    std::ofstream out(path);
    // No trailing newline: the classic half-written tail of a writer that
    // died mid-fputs. Only newline-terminated lines are committed history.
    out << "{\"run\": 0}\n{\"run\": 1}\n{\"run\": 2, \"mak";
  }
  const util::HistoryAppendResult res =
      util::append_history_line(path, "{\"run\": 3}");
  ASSERT_TRUE(res.rotated);
  EXPECT_TRUE(res.torn_skipped);
  EXPECT_EQ(res.entries, 3u);  // run 0, run 1, run 3 — the torn tail is gone
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[1], "{\"run\": 1}");
  EXPECT_EQ(lines.back(), "{\"run\": 3}");
  std::filesystem::remove(path);
}

TEST(BenchHistoryCrashSafety, CleanAppendDoesNotSetTheTornFlag) {
  const std::string path = "history_test_clean.jsonl";
  std::filesystem::remove(path);
  util::HistoryAppendResult res = util::append_history_line(path, "{}");
  EXPECT_FALSE(res.torn_skipped);
  res = util::append_history_line(path, "{}");
  EXPECT_FALSE(res.torn_skipped);
  EXPECT_EQ(res.entries, 2u);
  std::filesystem::remove(path);
}

TEST(BenchHistoryCrashSafety, AtomicRenameLeavesNoTempFileBehind) {
  const std::string path = "history_test_atomic.jsonl";
  const std::string tmp = path + ".tmp";
  std::filesystem::remove(path);
  std::filesystem::remove(tmp);
  for (int i = 0; i < 3; ++i) {
    const util::HistoryAppendResult res = util::append_history_line(
        path, "{\"run\": " + std::to_string(i) + "}");
    ASSERT_TRUE(res.rotated);
    // The temp staging file must not survive a successful rename — a
    // stale .tmp would shadow the next crash diagnosis.
    EXPECT_FALSE(std::filesystem::exists(tmp)) << "iteration " << i;
  }
  EXPECT_EQ(read_lines(path).size(), 3u);
  std::filesystem::remove(path);
}

TEST(BenchHistoryCrashSafety, FailedWriteLeavesTheOldFileUntouched) {
  // Make the *rename target* unreachable mid-flight by pointing the append
  // at a directory whose .tmp sibling cannot be created: a directory at
  // the .tmp path forces the staging write to fail, and the original
  // file's bytes must be exactly what they were before the attempt.
  const std::string path = "history_test_preserve.jsonl";
  const std::string tmp = path + ".tmp";
  std::filesystem::remove(path);
  std::filesystem::remove_all(tmp);
  {
    std::ofstream out(path);
    out << "{\"run\": 0}\n";
  }
  std::filesystem::create_directory(tmp);
  const util::HistoryAppendResult res =
      util::append_history_line(path, "{\"run\": 1}");
  EXPECT_FALSE(res.rotated);
  EXPECT_TRUE(res.write_failed);
  EXPECT_EQ(read_lines(path), std::vector<std::string>{"{\"run\": 0}"});
  std::filesystem::remove_all(tmp);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace ftsort
