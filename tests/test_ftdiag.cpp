// ftdiag: offline failure explanation and differential diagnosis, driven
// in-process through tools/ftdiag.hpp. The acceptance scenario is the
// pinned recovery_q3_kill6 shape from bench_harness: `ftdiag explain` on
// its exported trace must name the injected kill of node 6, the paper
// step it interrupted, and the transitively stalled set — identically
// from either executor's trace.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/ft_sorter.hpp"
#include "fault/scenario.hpp"
#include "sim/exporters.hpp"
#include "sim/link_stats.hpp"
#include "sim/watchdog.hpp"
#include "sort/distribution.hpp"
#include "tools/ftdiag.hpp"
#include "util/rng.hpp"

namespace ftsort {
namespace {

core::SortOutcome run_pinned_recovery(core::Executor exec) {
  util::Rng rng(1703);
  const fault::FaultSet faults = fault::random_faults(3, 1, rng);
  const auto keys = sort::gen_uniform(200, rng);
  core::SortConfig cfg;
  cfg.executor = exec;
  cfg.online_recovery = true;
  cfg.injector.kill_node_at(6, 2000.0);
  cfg.record_metrics = true;
  cfg.record_trace = true;
  cfg.record_link_stats = true;
  const core::FaultTolerantSorter sorter(3, faults, cfg);
  return sorter.sort(keys);
}

std::string chrome_trace_of(const core::SortOutcome& out) {
  std::ostringstream os;
  sim::write_chrome_trace(os, out.trace_events, 8);
  return os.str();
}

/// Write `text` to a temp file in the test's working directory and return
/// the path (tests run single-process; fixed names do not collide).
std::string write_temp(const char* name, const std::string& text) {
  const std::string path = std::string("ftdiag_test_") + name + ".json";
  std::ofstream out(path);
  out << text;
  return path;
}

// ---------------------------------------------------------------------------
// explain

TEST(FtdiagExplain, NamesInjectedKillPhaseAndStalledSet) {
  const core::SortOutcome out =
      run_pinned_recovery(core::Executor::Sequential);
  const tools::ExplainResult res =
      tools::explain_trace_json(chrome_trace_of(out));
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_GT(res.timeout_events, 0u);
  EXPECT_GE(res.kill_events, 1u);
  ASSERT_TRUE(res.diagnosis.triggered());
  EXPECT_EQ(res.diagnosis.kind, sim::Diagnosis::Kind::TimeoutBurst);
  EXPECT_EQ(res.diagnosis.root_kind, sim::Diagnosis::RootKind::NodeKill);
  EXPECT_EQ(res.diagnosis.root_node, 6u);
  EXPECT_FALSE(res.diagnosis.stalled.empty());
  // The rendered report names the root cause, the interrupted paper
  // step, and the blast radius.
  EXPECT_NE(res.text.find("injected kill of node 6"), std::string::npos)
      << res.text;
  EXPECT_NE(res.text.find("during phase"), std::string::npos) << res.text;
  EXPECT_NE(res.text.find("stalled (transitively):"), std::string::npos)
      << res.text;
}

TEST(FtdiagExplain, IdenticalFromEitherExecutorsTrace) {
  const tools::ExplainResult seq = tools::explain_trace_json(
      chrome_trace_of(run_pinned_recovery(core::Executor::Sequential)));
  const tools::ExplainResult thr = tools::explain_trace_json(
      chrome_trace_of(run_pinned_recovery(core::Executor::Threaded)));
  ASSERT_TRUE(seq.ok) << seq.error;
  ASSERT_TRUE(thr.ok) << thr.error;
  EXPECT_TRUE(seq.diagnosis == thr.diagnosis);
  EXPECT_EQ(seq.text, thr.text);
}

TEST(FtdiagExplain, AgreesWithInProcessDiagnosisRoot) {
  const core::SortOutcome out =
      run_pinned_recovery(core::Executor::Sequential);
  const tools::ExplainResult res =
      tools::explain_trace_json(chrome_trace_of(out));
  ASSERT_TRUE(res.ok) << res.error;
  // Offline reconstruction and the in-process RunReport diagnosis feed
  // the same builder; they must agree on what broke.
  EXPECT_EQ(res.diagnosis.kind, out.report.diagnosis.kind);
  EXPECT_EQ(res.diagnosis.root_kind, out.report.diagnosis.root_kind);
  EXPECT_EQ(res.diagnosis.root_node, out.report.diagnosis.root_node);
  EXPECT_EQ(res.diagnosis.root_phase, out.report.diagnosis.root_phase);
  EXPECT_EQ(res.diagnosis.stalled, out.report.diagnosis.stalled);
}

TEST(FtdiagExplain, RejectsNonTraceInput) {
  EXPECT_FALSE(tools::explain_trace_json("{}").ok);
  EXPECT_FALSE(tools::explain_trace_json("not json at all").ok);
}

TEST(FtdiagExplain, EvictedTraceDegradesToExplicitEvidenceLoss) {
  // A ring-truncated trace: the kill that actually broke the run was
  // evicted; only one expired wait and the eviction-count metadata event
  // survive. The explainer must refuse the silent-peer verdict.
  const char* head = R"({"traceEvents": [
    {"name": "timeout", "ph": "i", "pid": 0, "tid": 2, "ts": 3100.0,
     "args": {"phase": "step5_merge_exchange", "src": 6, "tag": 9}},)";
  const char* evicted = R"(
    {"name": "trace_dropped", "ph": "M", "pid": 0, "args": {"count": 57}}
  ]})";
  const char* complete = R"(
    {"name": "trace_dropped", "ph": "M", "pid": 0, "args": {"count": 0}}
  ]})";

  const tools::ExplainResult lossy =
      tools::explain_trace_json(std::string(head) + evicted);
  ASSERT_TRUE(lossy.ok) << lossy.error;
  ASSERT_TRUE(lossy.diagnosis.triggered());
  EXPECT_EQ(lossy.diagnosis.root_kind, sim::Diagnosis::RootKind::Evicted);
  EXPECT_EQ(lossy.diagnosis.trace_dropped, 57u);
  EXPECT_NE(lossy.text.find("root evicted (trace_dropped=57)"),
            std::string::npos)
      << lossy.text;

  // The same evidence from a complete trace is a confident verdict.
  const tools::ExplainResult full =
      tools::explain_trace_json(std::string(head) + complete);
  ASSERT_TRUE(full.ok) << full.error;
  EXPECT_EQ(full.diagnosis.root_kind,
            sim::Diagnosis::RootKind::MissingPartner);
  EXPECT_EQ(full.diagnosis.root_node, 6u);
}

// ---------------------------------------------------------------------------
// diff

TEST(FtdiagDiff, FlagsSyntheticPhaseRegressionInMetricsFormat) {
  const core::SortOutcome out =
      run_pinned_recovery(core::Executor::Sequential);
  std::ostringstream a_os;
  sim::write_metrics_json(a_os, out.report);

  // Synthetic regression: one phase's critical path grows 50%, charged to
  // compute.
  sim::RunReport slowed = out.report;
  bool scaled = false;
  for (sim::PhaseBreakdown::Slice& s : slowed.phases.slices)
    if (s.phase == sim::Phase::RecoverySort && s.critical_time > 0.0) {
      s.critical_compute += 0.5 * s.critical_time;
      s.critical_time *= 1.5;
      scaled = true;
    }
  ASSERT_TRUE(scaled) << "pinned scenario lost its recovery_sort phase";
  std::ostringstream b_os;
  sim::write_metrics_json(b_os, slowed);

  const tools::DiffResult res =
      tools::diff_json(a_os.str(), b_os.str(), 20.0);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.regressions, 1u);
  const tools::PhaseDelta* hit = nullptr;
  for (const tools::PhaseDelta& d : res.deltas)
    if (d.regression) hit = &d;
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->phase, "recovery_sort");
  EXPECT_NEAR(hit->delta_pct, 50.0, 0.1);
  EXPECT_EQ(hit->attribution, "compute");
  EXPECT_NE(res.text.find("recovery_sort"), std::string::npos) << res.text;
  EXPECT_NE(res.text.find("REGRESSION"), std::string::npos) << res.text;

  // The CLI exit code carries the verdict: 1 for a regression, 0 clean.
  const std::string pa = write_temp("metrics_a", a_os.str());
  const std::string pb = write_temp("metrics_b", b_os.str());
  const char* diff_args[] = {"ftdiag", "diff", pa.c_str(), pb.c_str(),
                             "--threshold", "20"};
  std::ostringstream cli_out;
  std::ostringstream cli_err;
  EXPECT_EQ(tools::run_cli(6, diff_args, cli_out, cli_err), 1);
  EXPECT_NE(cli_out.str().find("recovery_sort"), std::string::npos);
  const char* same_args[] = {"ftdiag", "diff", pa.c_str(), pa.c_str()};
  EXPECT_EQ(tools::run_cli(4, same_args, cli_out, cli_err), 0);
  std::remove(pa.c_str());
  std::remove(pb.c_str());
}

TEST(FtdiagDiff, AttributesBenchFormatRegressionToScenarioAndPhase) {
  const char* base = R"({
  "bench": "sort", "schema_version": 2, "mode": "smoke",
  "scenarios": [
    {
      "name": "fig7_q6_r2",
      "makespan": 1000,
      "phases": {
        "step3_local_sort": {"comparisons": 10, "critical_time": 400},
        "step5_merge_exchange": {"comparisons": 5, "critical_time": 600}
      }
    },
    {
      "name": "recovery_q3_kill6",
      "makespan": 500,
      "phases": {
        "recovery_sort": {"comparisons": 7, "critical_time": 500}
      }
    }
  ]
})";
  std::string slowed = base;
  const std::size_t at = slowed.find("\"critical_time\": 600");
  ASSERT_NE(at, std::string::npos);
  slowed.replace(at, 20, "\"critical_time\": 900");

  const tools::DiffResult res = tools::diff_json(base, slowed, 20.0);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.regressions, 1u);
  const tools::PhaseDelta* hit = nullptr;
  for (const tools::PhaseDelta& d : res.deltas)
    if (d.regression) hit = &d;
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->scenario, "fig7_q6_r2");
  EXPECT_EQ(hit->phase, "step5_merge_exchange");
  EXPECT_NEAR(hit->delta_pct, 50.0, 0.1);
}

TEST(FtdiagDiff, GateIsSymmetric) {
  // An unexplained 2x speedup in a deterministic simulator is as
  // suspicious as a slowdown: both sides of the threshold flag.
  const char* base = R"({"bench": "sort", "scenarios": [
    {"name": "s", "makespan": 100,
     "phases": {"gather": {"critical_time": 100}}}]})";
  const char* fast = R"({"bench": "sort", "scenarios": [
    {"name": "s", "makespan": 50,
     "phases": {"gather": {"critical_time": 50}}}]})";
  const tools::DiffResult res = tools::diff_json(base, fast, 20.0);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.regressions, 1u);
}

TEST(FtdiagDiff, RefusesToCompareRunsUnderDifferentCostModels) {
  // critical_time is measured in cost-model units; a diff across models
  // would report the model change as a phase regression. The gate refuses
  // outright (CLI exit 2) instead of producing a misleading verdict.
  const char* saf = R"({"bench": "sort", "scenarios": [
    {"name": "s", "makespan": 100,
     "cost_model": {"name": "ncube7", "routing": "store_and_forward",
       "t_compare": 2, "t_transfer": 8, "t_startup": 0},
     "phases": {"gather": {"critical_time": 100}}}]})";
  const char* ct = R"({"bench": "sort", "scenarios": [
    {"name": "s", "makespan": 80,
     "cost_model": {"name": "wormhole", "routing": "cut_through",
       "t_compare": 2, "t_transfer": 8, "t_startup": 350},
     "phases": {"gather": {"critical_time": 80}}}]})";
  const tools::DiffResult res = tools::diff_json(saf, ct, 20.0);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("cost model mismatch"), std::string::npos);
  EXPECT_NE(res.error.find("wormhole"), std::string::npos);
  // Same model on both sides compares normally...
  EXPECT_TRUE(tools::diff_json(saf, saf, 20.0).ok);
  // ...and files predating the cost_model block (no signature) still
  // compare, for backward compatibility with archived exports.
  const char* legacy = R"({"bench": "sort", "scenarios": [
    {"name": "s", "makespan": 100,
     "phases": {"gather": {"critical_time": 100}}}]})";
  EXPECT_TRUE(tools::diff_json(legacy, ct, 20.0).ok);

  // Metrics-format exports carry the signature at the top level and are
  // gated the same way.
  const core::SortOutcome out =
      run_pinned_recovery(core::Executor::Sequential);
  std::ostringstream a_os;
  sim::write_metrics_json(a_os, out.report);
  std::string other = a_os.str();
  const std::size_t at = other.find("\"ncube7\"");
  ASSERT_NE(at, std::string::npos);
  other.replace(at, 8, "\"custom\"");
  const tools::DiffResult mres = tools::diff_json(a_os.str(), other, 20.0);
  EXPECT_FALSE(mres.ok);
  EXPECT_NE(mres.error.find("cost model mismatch"), std::string::npos);
}

// ---------------------------------------------------------------------------
// hotspots

TEST(FtdiagHotspots, RanksDimensionsAndAttributesCommFromMetricsFormat) {
  const core::SortOutcome out =
      run_pinned_recovery(core::Executor::Sequential);
  std::ostringstream os;
  sim::write_metrics_json(os, out.report);
  const tools::HotspotsResult res = tools::hotspots_report(os.str(), 2);
  ASSERT_TRUE(res.ok) << res.error;
  // The report leads with the hottest dimension by busy time; under
  // ncube7 (t_startup = 0) that is also the max-key_hops dimension.
  std::uint64_t max_hops = 0;
  int max_dim = 0;
  for (cube::Dim d = 0; d < out.report.links.dim; ++d) {
    const std::uint64_t h = out.report.links.dim_total(d).key_hops;
    if (h > max_hops) {
      max_hops = h;
      max_dim = static_cast<int>(d);
    }
  }
  const std::string lead = "dim " + std::to_string(max_dim) + ":";
  const std::size_t lead_at = res.text.find(lead);
  ASSERT_NE(lead_at, std::string::npos) << res.text;
  for (cube::Dim d = 0; d < out.report.links.dim; ++d) {
    const std::string other = "dim " + std::to_string(d) + ":";
    const std::size_t at = res.text.find(other);
    if (at != std::string::npos) {
      EXPECT_GE(at, lead_at) << res.text;
    }
  }
  EXPECT_NE(res.text.find("comm by phase:"), std::string::npos) << res.text;
  // --top 2 keeps the ranking to two rows.
  std::size_t rows = 0;
  for (std::size_t at = res.text.find("    dim "); at != std::string::npos;
       at = res.text.find("    dim ", at + 1))
    ++rows;
  EXPECT_EQ(rows, 2u);
}

TEST(FtdiagHotspots, DiffGateIsSymmetricOnPerDimensionTraffic) {
  const char* base = R"({"bench": "sort", "scenarios": [
    {"name": "s", "makespan": 100, "link_key_hops": 1000,
     "link_dimensions": {
       "0": {"traversals": 10, "key_hops": 600, "busy": 4800, "utilization": 0.5},
       "1": {"traversals": 8, "key_hops": 400, "busy": 3200, "utilization": 0.3}
     }}]})";
  // Traffic migrates from dim 1 onto dim 0; the total is unchanged, so
  // only the per-dimension gate can see it — in both directions.
  const char* skewed = R"({"bench": "sort", "scenarios": [
    {"name": "s", "makespan": 100, "link_key_hops": 1000,
     "link_dimensions": {
       "0": {"traversals": 10, "key_hops": 900, "busy": 7200, "utilization": 0.7},
       "1": {"traversals": 8, "key_hops": 100, "busy": 800, "utilization": 0.1}
     }}]})";
  const tools::HotspotsResult res = tools::hotspots_diff(base, skewed, 20.0);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.regressions, 2u);  // +50% on dim 0 AND -75% on dim 1
  bool saw_up = false;
  bool saw_down = false;
  for (const tools::DimDelta& d : res.deltas) {
    if (d.regression && d.delta_pct > 0.0) saw_up = true;
    if (d.regression && d.delta_pct < 0.0) saw_down = true;
  }
  EXPECT_TRUE(saw_up);
  EXPECT_TRUE(saw_down);
  // Identical files compare clean.
  EXPECT_EQ(tools::hotspots_diff(base, base, 20.0).regressions, 0u);

  // CLI wiring: exit 1 on the skewed pair, 0 on the identical pair.
  const std::string pa = write_temp("hotspots_a", base);
  const std::string pb = write_temp("hotspots_b", skewed);
  std::ostringstream cli_out;
  std::ostringstream cli_err;
  const char* diff_args[] = {"ftdiag", "hotspots", pa.c_str(), pb.c_str(),
                             "--threshold", "20"};
  EXPECT_EQ(tools::run_cli(6, diff_args, cli_out, cli_err), 1);
  EXPECT_NE(cli_out.str().find("REGRESSION"), std::string::npos);
  const char* same_args[] = {"ftdiag", "hotspots", pa.c_str(), pa.c_str()};
  EXPECT_EQ(tools::run_cli(4, same_args, cli_out, cli_err), 0);
  const char* report_args[] = {"ftdiag", "hotspots", pa.c_str()};
  EXPECT_EQ(tools::run_cli(3, report_args, cli_out, cli_err), 0);
  std::remove(pa.c_str());
  std::remove(pb.c_str());
}

TEST(FtdiagHotspots, RejectsExportsWithoutLinkTelemetry) {
  // v3 metrics export with telemetry off: explicit stub, explicit error.
  EXPECT_FALSE(
      tools::hotspots_report(R"({"makespan": 1, "links": {"enabled": false},
                                 "phases": []})",
                             0)
          .ok);
  // Pre-v3 export and bench files without link columns are errors too.
  EXPECT_FALSE(tools::hotspots_report(R"({"makespan": 1, "phases": []})", 0)
                   .ok);
  EXPECT_FALSE(
      tools::hotspots_report(
          R"({"scenarios": [{"name": "s", "makespan": 1}]})", 0)
          .ok);
}

TEST(FtdiagDiff, RejectsMalformedAndMismatchedInput) {
  EXPECT_FALSE(tools::diff_json("{}", "{}", 20.0).ok);
  const char* bench = R"({"scenarios": [{"name": "s", "makespan": 1}]})";
  const char* metrics = R"({"makespan": 1, "phases": []})";
  EXPECT_FALSE(tools::diff_json(bench, metrics, 20.0).ok);

  std::ostringstream cli_out;
  std::ostringstream cli_err;
  const char* no_args[] = {"ftdiag"};
  EXPECT_EQ(tools::run_cli(1, no_args, cli_out, cli_err), 2);
  const char* missing[] = {"ftdiag", "explain", "/nonexistent/trace.json"};
  EXPECT_EQ(tools::run_cli(3, missing, cli_out, cli_err), 2);
  // The usage text advertises every subcommand and the schema ceilings.
  EXPECT_NE(cli_err.str().find("history"), std::string::npos);
  EXPECT_NE(cli_err.str().find("supported schemas"), std::string::npos);
}

// ---------------------------------------------------------------------------
// schema compatibility: files newer than the build (or, for the
// exact-version campaign reader, older) are refused with a versioned
// message, never misparsed into zero-filled tables.

TEST(FtdiagSchema, RefusesFilesNewerThanTheBuildWithVersionedMessage) {
  const tools::DiffResult metrics = tools::diff_json(
      R"({"schema_version": 99, "makespan": 1, "phases": []})",
      R"({"schema_version": 99, "makespan": 1, "phases": []})", 20.0);
  EXPECT_FALSE(metrics.ok);
  EXPECT_NE(metrics.error.find("schema v99"), std::string::npos)
      << metrics.error;
  EXPECT_NE(metrics.error.find("reads up to v7"), std::string::npos)
      << metrics.error;

  const tools::HotspotsResult bench = tools::hotspots_report(
      R"({"schema_version": 7, "scenarios": [{"name": "s",
          "link_dimensions": {"0": {"key_hops": 1}}}]})",
      0);
  EXPECT_FALSE(bench.ok);
  EXPECT_NE(bench.error.find("reads up to v3"), std::string::npos)
      << bench.error;

  // Campaign bucket keys changed meaning across versions: a v4 file gets
  // the versioned refusal instead of zeroed latency columns.
  const tools::CampaignCliResult old = tools::campaign_report(
      R"({"campaign": "fault_mc", "schema_version": 4,
          "buckets": [{"r": 0, "trials": 1}]})");
  EXPECT_FALSE(old.ok);
  EXPECT_NE(old.error.find("schema v4"), std::string::npos) << old.error;
  EXPECT_NE(old.error.find("reads v7"), std::string::npos) << old.error;
}

// ---------------------------------------------------------------------------
// history: trend gate over the append-only BENCH_history.jsonl.

namespace {

/// One synthetic history line in the bench_harness shape.
std::string history_line(const char* mode, const char* build,
                         double makespan, double wall_ns) {
  std::ostringstream os;
  os << R"({"bench": "sort", "schema_version": 3, "mode": ")" << mode
     << R"(", "build": ")" << build
     << R"(", "scenarios": [{"name": "fig7", "wall_ns": )" << wall_ns
     << R"(, "makespan": )" << makespan << R"(, "comparisons": 7}]})"
     << "\n";
  return os.str();
}

}  // namespace

TEST(FtdiagHistory, StableSeriesPassesAndRegressionTrips) {
  std::string stable;
  for (int i = 0; i < 5; ++i)
    stable += history_line("smoke", "release", 100.0, 5e6);
  const tools::HistoryResult ok =
      tools::history_trends(stable, "makespan", 3, 20.0);
  ASSERT_TRUE(ok.ok) << ok.error;
  EXPECT_EQ(ok.regressions, 0u);
  ASSERT_EQ(ok.trends.size(), 1u);
  EXPECT_EQ(ok.trends[0].scenario, "fig7");
  EXPECT_EQ(ok.trends[0].entries, 5u);
  EXPECT_DOUBLE_EQ(ok.trends[0].drift_pct, 0.0);

  // Last-3 window settles 30% above the baseline median: beyond ±20%.
  std::string drifted;
  for (int i = 0; i < 2; ++i)
    drifted += history_line("smoke", "release", 100.0, 5e6);
  for (int i = 0; i < 3; ++i)
    drifted += history_line("smoke", "release", 130.0, 5e6);
  const tools::HistoryResult bad =
      tools::history_trends(drifted, "makespan", 3, 20.0);
  ASSERT_TRUE(bad.ok) << bad.error;
  EXPECT_EQ(bad.regressions, 1u);
  ASSERT_EQ(bad.trends.size(), 1u);
  EXPECT_TRUE(bad.trends[0].regression);
  EXPECT_DOUBLE_EQ(bad.trends[0].baseline, 100.0);
  EXPECT_DOUBLE_EQ(bad.trends[0].recent, 130.0);
  EXPECT_NE(bad.text.find("REGRESSION"), std::string::npos) << bad.text;

  // The gate is symmetric: an unexplained speedup is just as suspect.
  std::string faster;
  for (int i = 0; i < 2; ++i)
    faster += history_line("smoke", "release", 100.0, 5e6);
  for (int i = 0; i < 3; ++i)
    faster += history_line("smoke", "release", 70.0, 5e6);
  EXPECT_EQ(tools::history_trends(faster, "makespan", 3, 20.0).regressions,
            1u);
}

TEST(FtdiagHistory, GroupsByModeAndBuildAndSkipsShortGroups) {
  // Same scenario name in smoke/full and release/debug: four distinct
  // groups; the full and debug singletons are too short to trend.
  std::string mixed;
  mixed += history_line("smoke", "release", 100.0, 5e6);
  mixed += history_line("smoke", "release", 500.0, 5e6);  // +400% drift
  mixed += history_line("full", "release", 9999.0, 9e9);
  mixed += history_line("smoke", "debug", 100.0, 8e7);
  const tools::HistoryResult res =
      tools::history_trends(mixed, "makespan", 3, 20.0);
  ASSERT_TRUE(res.ok) << res.error;
  ASSERT_EQ(res.trends.size(), 1u);
  EXPECT_EQ(res.trends[0].mode, "smoke");
  EXPECT_EQ(res.trends[0].build, "release");
  EXPECT_EQ(res.short_groups, 2u);
  EXPECT_EQ(res.regressions, 1u);  // the smoke/release jump, nothing else
}

TEST(FtdiagHistory, SkipsCorruptLinesWithACountAndNeverFails) {
  std::string text;
  text += history_line("smoke", "release", 100.0, 5e6);
  text += "not json at all\n";
  // A truncated append (crashed writer): braces never close.
  text += R"({"bench": "sort", "mode": "smoke", "scenarios": [{"name")";
  text += "\n";
  text += history_line("smoke", "release", 100.0, 5e6);
  const tools::HistoryResult res =
      tools::history_trends(text, "makespan", 3, 20.0);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.lines, 2u);
  EXPECT_EQ(res.skipped_lines, 2u);
  ASSERT_EQ(res.trends.size(), 1u);
  EXPECT_EQ(res.trends[0].entries, 2u);
  EXPECT_NE(res.text.find("skipped 2 corrupt"), std::string::npos)
      << res.text;
}

TEST(FtdiagHistory, ExitCodesMatchTheCliContract) {
  std::string stable;
  std::string drifted;
  for (int i = 0; i < 4; ++i) {
    stable += history_line("smoke", "release", 100.0, 5e6);
    drifted += history_line("smoke", "release", i < 2 ? 100.0 : 200.0, 5e6);
  }
  const std::string ps = write_temp("hist_stable", stable);
  const std::string pd = write_temp("hist_drift", drifted);
  std::ostringstream out;
  std::ostringstream err;
  const char* clean[] = {"ftdiag", "history", ps.c_str()};
  EXPECT_EQ(tools::run_cli(3, clean, out, err), 0);
  const char* trip[] = {"ftdiag", "history", pd.c_str(), "--last", "2"};
  EXPECT_EQ(tools::run_cli(5, trip, out, err), 1);
  // wall_ns is flat in both fixtures: metric selection flips the verdict.
  const char* wall[] = {"ftdiag",  "history", pd.c_str(),
                        "--metric", "wall_ns"};
  EXPECT_EQ(tools::run_cli(5, wall, out, err), 0);
  const char* bad_metric[] = {"ftdiag",  "history", ps.c_str(),
                              "--metric", "bogus"};
  EXPECT_EQ(tools::run_cli(5, bad_metric, out, err), 2);
  const char* bad_flag[] = {"ftdiag", "history", ps.c_str(), "--nope", "1"};
  EXPECT_EQ(tools::run_cli(5, bad_flag, out, err), 2);
  const char* missing[] = {"ftdiag", "history", "/nonexistent/hist.jsonl"};
  EXPECT_EQ(tools::run_cli(3, missing, out, err), 2);
  std::remove(ps.c_str());
  std::remove(pd.c_str());
}

// ---------------------------------------------------------------------------
// degenerate inputs: every reader refuses an empty or hollow file with
// exit 2 and a message naming what is missing — never a zero-filled
// table (exit 0) that would read as "all clear" in CI.

TEST(FtdiagDegenerate, EmptyMetricsFileExitsTwoFromEveryReader) {
  const std::string empty = write_temp("empty", "");
  std::ostringstream out;
  std::ostringstream err;
  const char* diff[] = {"ftdiag", "diff", empty.c_str(), empty.c_str()};
  EXPECT_EQ(tools::run_cli(4, diff, out, err), 2);
  const char* hot[] = {"ftdiag", "hotspots", empty.c_str()};
  EXPECT_EQ(tools::run_cli(3, hot, out, err), 2);
  const char* explain[] = {"ftdiag", "explain", empty.c_str()};
  EXPECT_EQ(tools::run_cli(3, explain, out, err), 2);
  const char* stuck[] = {"ftdiag", "stuck", empty.c_str()};
  EXPECT_EQ(tools::run_cli(3, stuck, out, err), 2);
  // Each refusal names the structure it was looking for.
  EXPECT_NE(err.str().find("phases"), std::string::npos) << err.str();
  EXPECT_NE(err.str().find("traceEvents"), std::string::npos) << err.str();
  EXPECT_NE(err.str().find("watchdog_dump"), std::string::npos) << err.str();
  std::remove(empty.c_str());
}

TEST(FtdiagDegenerate, ZeroTrialCampaignIsRefusedNotReportedClean) {
  const std::string path = write_temp(
      "zero_campaign",
      R"({"campaign": "fault_mc", "schema_version": 7, "seed": 1, "n": 3,
          "r_max": 0, "scenarios": 0, "keys": 16, "executor": "sequential",
          "watchdog": {"trips": 0, "near_misses": 0}, "partial": false,
          "buckets": [], "trials": []})");
  std::ostringstream out;
  std::ostringstream err;
  const char* args[] = {"ftdiag", "campaign", path.c_str()};
  EXPECT_EQ(tools::run_cli(3, args, out, err), 2);
  EXPECT_NE(err.str().find("buckets"), std::string::npos) << err.str();
  std::remove(path.c_str());
}

TEST(FtdiagDegenerate, NearMissOnlyDumpDecodesAndExitsZero) {
  // A record-policy run that brushed the deadline but never aborted:
  // `stuck` decodes it (exit 0 — no trip recorded) so operators can read
  // near-miss dumps without tripping CI.
  sim::WatchdogReport rep;
  rep.enabled = true;
  rep.abort_on_trip = false;
  rep.deadline_ms = 50;
  rep.interval_ms = 5;
  rep.trips = 0;
  rep.near_misses = 3;
  rep.effective_deadline_ms = 50;
  rep.stall_ms = 61;
  rep.slots.push_back({"node 0", 12, 61, "merge_split", false});
  rep.slots.push_back({"node 1", 40, 2, "route", false});
  const std::string path = write_temp(
      "near_miss_dump",
      sim::render_watchdog_dump(rep, sim::WatchdogDumpContext{}));
  std::ostringstream out;
  std::ostringstream err;
  const char* args[] = {"ftdiag", "stuck", path.c_str()};
  EXPECT_EQ(tools::run_cli(3, args, out, err), 0) << err.str();
  EXPECT_NE(out.str().find("near misses: 3"), std::string::npos)
      << out.str();
  EXPECT_NE(out.str().find("most silent: node 0"), std::string::npos)
      << out.str();
  EXPECT_EQ(out.str().find("STUCK"), std::string::npos) << out.str();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ftsort
