# Empty compiler generated dependencies file for ncube_demo.
# This may be replaced when dependencies are built.
