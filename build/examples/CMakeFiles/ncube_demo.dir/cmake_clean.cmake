file(REMOVE_RECURSE
  "CMakeFiles/ncube_demo.dir/ncube_demo.cpp.o"
  "CMakeFiles/ncube_demo.dir/ncube_demo.cpp.o.d"
  "ncube_demo"
  "ncube_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncube_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
