
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/ncube_demo.cpp" "examples/CMakeFiles/ncube_demo.dir/ncube_demo.cpp.o" "gcc" "examples/CMakeFiles/ncube_demo.dir/ncube_demo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ftsort_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/ftsort_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/ftsort_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/sort/CMakeFiles/ftsort_sort.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ftsort_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/ftsort_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/hypercube/CMakeFiles/ftsort_hypercube.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ftsort_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
