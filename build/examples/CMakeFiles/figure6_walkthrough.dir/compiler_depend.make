# Empty compiler generated dependencies file for figure6_walkthrough.
# This may be replaced when dependencies are built.
