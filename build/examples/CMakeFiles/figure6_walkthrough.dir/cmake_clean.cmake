file(REMOVE_RECURSE
  "CMakeFiles/figure6_walkthrough.dir/figure6_walkthrough.cpp.o"
  "CMakeFiles/figure6_walkthrough.dir/figure6_walkthrough.cpp.o.d"
  "figure6_walkthrough"
  "figure6_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure6_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
