# Empty dependencies file for resilience_story.
# This may be replaced when dependencies are built.
