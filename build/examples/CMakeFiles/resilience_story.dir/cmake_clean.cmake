file(REMOVE_RECURSE
  "CMakeFiles/resilience_story.dir/resilience_story.cpp.o"
  "CMakeFiles/resilience_story.dir/resilience_story.cpp.o.d"
  "resilience_story"
  "resilience_story.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resilience_story.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
