# Empty dependencies file for fault_sweep.
# This may be replaced when dependencies are built.
