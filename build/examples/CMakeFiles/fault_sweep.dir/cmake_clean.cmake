file(REMOVE_RECURSE
  "CMakeFiles/fault_sweep.dir/fault_sweep.cpp.o"
  "CMakeFiles/fault_sweep.dir/fault_sweep.cpp.o.d"
  "fault_sweep"
  "fault_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
