file(REMOVE_RECURSE
  "CMakeFiles/diagnosis_demo.dir/diagnosis_demo.cpp.o"
  "CMakeFiles/diagnosis_demo.dir/diagnosis_demo.cpp.o.d"
  "diagnosis_demo"
  "diagnosis_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diagnosis_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
