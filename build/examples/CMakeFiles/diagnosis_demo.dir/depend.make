# Empty dependencies file for diagnosis_demo.
# This may be replaced when dependencies are built.
