# Empty compiler generated dependencies file for ftsort_hypercube.
# This may be replaced when dependencies are built.
