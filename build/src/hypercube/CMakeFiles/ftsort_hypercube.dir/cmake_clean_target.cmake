file(REMOVE_RECURSE
  "libftsort_hypercube.a"
)
