file(REMOVE_RECURSE
  "CMakeFiles/ftsort_hypercube.dir/routing.cpp.o"
  "CMakeFiles/ftsort_hypercube.dir/routing.cpp.o.d"
  "CMakeFiles/ftsort_hypercube.dir/subcube.cpp.o"
  "CMakeFiles/ftsort_hypercube.dir/subcube.cpp.o.d"
  "libftsort_hypercube.a"
  "libftsort_hypercube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftsort_hypercube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
