# Empty compiler generated dependencies file for ftsort_baseline.
# This may be replaced when dependencies are built.
