file(REMOVE_RECURSE
  "CMakeFiles/ftsort_baseline.dir/max_subcube.cpp.o"
  "CMakeFiles/ftsort_baseline.dir/max_subcube.cpp.o.d"
  "CMakeFiles/ftsort_baseline.dir/mfs_sorter.cpp.o"
  "CMakeFiles/ftsort_baseline.dir/mfs_sorter.cpp.o.d"
  "CMakeFiles/ftsort_baseline.dir/ring_sorter.cpp.o"
  "CMakeFiles/ftsort_baseline.dir/ring_sorter.cpp.o.d"
  "CMakeFiles/ftsort_baseline.dir/spare_allocation.cpp.o"
  "CMakeFiles/ftsort_baseline.dir/spare_allocation.cpp.o.d"
  "libftsort_baseline.a"
  "libftsort_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftsort_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
