file(REMOVE_RECURSE
  "libftsort_baseline.a"
)
