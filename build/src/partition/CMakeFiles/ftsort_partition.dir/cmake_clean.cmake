file(REMOVE_RECURSE
  "CMakeFiles/ftsort_partition.dir/partition.cpp.o"
  "CMakeFiles/ftsort_partition.dir/partition.cpp.o.d"
  "CMakeFiles/ftsort_partition.dir/plan.cpp.o"
  "CMakeFiles/ftsort_partition.dir/plan.cpp.o.d"
  "CMakeFiles/ftsort_partition.dir/selection.cpp.o"
  "CMakeFiles/ftsort_partition.dir/selection.cpp.o.d"
  "libftsort_partition.a"
  "libftsort_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftsort_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
