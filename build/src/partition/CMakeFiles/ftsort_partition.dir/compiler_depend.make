# Empty compiler generated dependencies file for ftsort_partition.
# This may be replaced when dependencies are built.
