file(REMOVE_RECURSE
  "libftsort_partition.a"
)
