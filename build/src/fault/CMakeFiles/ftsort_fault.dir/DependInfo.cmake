
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fault/diagnosis.cpp" "src/fault/CMakeFiles/ftsort_fault.dir/diagnosis.cpp.o" "gcc" "src/fault/CMakeFiles/ftsort_fault.dir/diagnosis.cpp.o.d"
  "/root/repo/src/fault/fault_set.cpp" "src/fault/CMakeFiles/ftsort_fault.dir/fault_set.cpp.o" "gcc" "src/fault/CMakeFiles/ftsort_fault.dir/fault_set.cpp.o.d"
  "/root/repo/src/fault/link_fault.cpp" "src/fault/CMakeFiles/ftsort_fault.dir/link_fault.cpp.o" "gcc" "src/fault/CMakeFiles/ftsort_fault.dir/link_fault.cpp.o.d"
  "/root/repo/src/fault/scenario.cpp" "src/fault/CMakeFiles/ftsort_fault.dir/scenario.cpp.o" "gcc" "src/fault/CMakeFiles/ftsort_fault.dir/scenario.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hypercube/CMakeFiles/ftsort_hypercube.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ftsort_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
