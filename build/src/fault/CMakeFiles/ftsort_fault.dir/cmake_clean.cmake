file(REMOVE_RECURSE
  "CMakeFiles/ftsort_fault.dir/diagnosis.cpp.o"
  "CMakeFiles/ftsort_fault.dir/diagnosis.cpp.o.d"
  "CMakeFiles/ftsort_fault.dir/fault_set.cpp.o"
  "CMakeFiles/ftsort_fault.dir/fault_set.cpp.o.d"
  "CMakeFiles/ftsort_fault.dir/link_fault.cpp.o"
  "CMakeFiles/ftsort_fault.dir/link_fault.cpp.o.d"
  "CMakeFiles/ftsort_fault.dir/scenario.cpp.o"
  "CMakeFiles/ftsort_fault.dir/scenario.cpp.o.d"
  "libftsort_fault.a"
  "libftsort_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftsort_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
