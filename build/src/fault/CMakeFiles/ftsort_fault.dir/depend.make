# Empty dependencies file for ftsort_fault.
# This may be replaced when dependencies are built.
