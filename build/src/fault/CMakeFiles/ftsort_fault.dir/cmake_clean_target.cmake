file(REMOVE_RECURSE
  "libftsort_fault.a"
)
