file(REMOVE_RECURSE
  "libftsort_core.a"
)
