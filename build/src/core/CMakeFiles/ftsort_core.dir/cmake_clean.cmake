file(REMOVE_RECURSE
  "CMakeFiles/ftsort_core.dir/analytic.cpp.o"
  "CMakeFiles/ftsort_core.dir/analytic.cpp.o.d"
  "CMakeFiles/ftsort_core.dir/ft_sorter.cpp.o"
  "CMakeFiles/ftsort_core.dir/ft_sorter.cpp.o.d"
  "libftsort_core.a"
  "libftsort_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftsort_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
