# Empty compiler generated dependencies file for ftsort_core.
# This may be replaced when dependencies are built.
