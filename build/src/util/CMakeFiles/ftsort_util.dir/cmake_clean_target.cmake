file(REMOVE_RECURSE
  "libftsort_util.a"
)
