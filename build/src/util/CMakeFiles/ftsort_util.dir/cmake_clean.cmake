file(REMOVE_RECURSE
  "CMakeFiles/ftsort_util.dir/cli.cpp.o"
  "CMakeFiles/ftsort_util.dir/cli.cpp.o.d"
  "CMakeFiles/ftsort_util.dir/rng.cpp.o"
  "CMakeFiles/ftsort_util.dir/rng.cpp.o.d"
  "CMakeFiles/ftsort_util.dir/stats.cpp.o"
  "CMakeFiles/ftsort_util.dir/stats.cpp.o.d"
  "CMakeFiles/ftsort_util.dir/table.cpp.o"
  "CMakeFiles/ftsort_util.dir/table.cpp.o.d"
  "libftsort_util.a"
  "libftsort_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftsort_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
