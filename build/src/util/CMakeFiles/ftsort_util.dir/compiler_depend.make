# Empty compiler generated dependencies file for ftsort_util.
# This may be replaced when dependencies are built.
