
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sort/bitonic_network.cpp" "src/sort/CMakeFiles/ftsort_sort.dir/bitonic_network.cpp.o" "gcc" "src/sort/CMakeFiles/ftsort_sort.dir/bitonic_network.cpp.o.d"
  "/root/repo/src/sort/collectives.cpp" "src/sort/CMakeFiles/ftsort_sort.dir/collectives.cpp.o" "gcc" "src/sort/CMakeFiles/ftsort_sort.dir/collectives.cpp.o.d"
  "/root/repo/src/sort/distribution.cpp" "src/sort/CMakeFiles/ftsort_sort.dir/distribution.cpp.o" "gcc" "src/sort/CMakeFiles/ftsort_sort.dir/distribution.cpp.o.d"
  "/root/repo/src/sort/merge_split.cpp" "src/sort/CMakeFiles/ftsort_sort.dir/merge_split.cpp.o" "gcc" "src/sort/CMakeFiles/ftsort_sort.dir/merge_split.cpp.o.d"
  "/root/repo/src/sort/sequential.cpp" "src/sort/CMakeFiles/ftsort_sort.dir/sequential.cpp.o" "gcc" "src/sort/CMakeFiles/ftsort_sort.dir/sequential.cpp.o.d"
  "/root/repo/src/sort/single_fault.cpp" "src/sort/CMakeFiles/ftsort_sort.dir/single_fault.cpp.o" "gcc" "src/sort/CMakeFiles/ftsort_sort.dir/single_fault.cpp.o.d"
  "/root/repo/src/sort/spmd_bitonic.cpp" "src/sort/CMakeFiles/ftsort_sort.dir/spmd_bitonic.cpp.o" "gcc" "src/sort/CMakeFiles/ftsort_sort.dir/spmd_bitonic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ftsort_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/ftsort_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/hypercube/CMakeFiles/ftsort_hypercube.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ftsort_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
