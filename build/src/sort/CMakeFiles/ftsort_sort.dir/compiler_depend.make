# Empty compiler generated dependencies file for ftsort_sort.
# This may be replaced when dependencies are built.
