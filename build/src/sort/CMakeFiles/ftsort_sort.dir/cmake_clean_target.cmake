file(REMOVE_RECURSE
  "libftsort_sort.a"
)
