file(REMOVE_RECURSE
  "CMakeFiles/ftsort_sort.dir/bitonic_network.cpp.o"
  "CMakeFiles/ftsort_sort.dir/bitonic_network.cpp.o.d"
  "CMakeFiles/ftsort_sort.dir/collectives.cpp.o"
  "CMakeFiles/ftsort_sort.dir/collectives.cpp.o.d"
  "CMakeFiles/ftsort_sort.dir/distribution.cpp.o"
  "CMakeFiles/ftsort_sort.dir/distribution.cpp.o.d"
  "CMakeFiles/ftsort_sort.dir/merge_split.cpp.o"
  "CMakeFiles/ftsort_sort.dir/merge_split.cpp.o.d"
  "CMakeFiles/ftsort_sort.dir/sequential.cpp.o"
  "CMakeFiles/ftsort_sort.dir/sequential.cpp.o.d"
  "CMakeFiles/ftsort_sort.dir/single_fault.cpp.o"
  "CMakeFiles/ftsort_sort.dir/single_fault.cpp.o.d"
  "CMakeFiles/ftsort_sort.dir/spmd_bitonic.cpp.o"
  "CMakeFiles/ftsort_sort.dir/spmd_bitonic.cpp.o.d"
  "libftsort_sort.a"
  "libftsort_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftsort_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
