
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/machine.cpp" "src/sim/CMakeFiles/ftsort_sim.dir/machine.cpp.o" "gcc" "src/sim/CMakeFiles/ftsort_sim.dir/machine.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/ftsort_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/ftsort_sim.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fault/CMakeFiles/ftsort_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/hypercube/CMakeFiles/ftsort_hypercube.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ftsort_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
