file(REMOVE_RECURSE
  "CMakeFiles/ftsort_sim.dir/machine.cpp.o"
  "CMakeFiles/ftsort_sim.dir/machine.cpp.o.d"
  "CMakeFiles/ftsort_sim.dir/trace.cpp.o"
  "CMakeFiles/ftsort_sim.dir/trace.cpp.o.d"
  "libftsort_sim.a"
  "libftsort_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftsort_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
