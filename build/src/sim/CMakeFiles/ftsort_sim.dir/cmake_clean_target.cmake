file(REMOVE_RECURSE
  "libftsort_sim.a"
)
