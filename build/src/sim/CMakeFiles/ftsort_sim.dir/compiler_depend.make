# Empty compiler generated dependencies file for ftsort_sim.
# This may be replaced when dependencies are built.
