# Empty dependencies file for bench_partition_micro.
# This may be replaced when dependencies are built.
