file(REMOVE_RECURSE
  "CMakeFiles/bench_partition_micro.dir/bench_partition_micro.cpp.o"
  "CMakeFiles/bench_partition_micro.dir/bench_partition_micro.cpp.o.d"
  "bench_partition_micro"
  "bench_partition_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partition_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
