# Empty compiler generated dependencies file for bench_ablation_cost.
# This may be replaced when dependencies are built.
