file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cost.dir/bench_ablation_cost.cpp.o"
  "CMakeFiles/bench_ablation_cost.dir/bench_ablation_cost.cpp.o.d"
  "bench_ablation_cost"
  "bench_ablation_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
