# Empty compiler generated dependencies file for bench_sort_micro.
# This may be replaced when dependencies are built.
