file(REMOVE_RECURSE
  "CMakeFiles/bench_sort_micro.dir/bench_sort_micro.cpp.o"
  "CMakeFiles/bench_sort_micro.dir/bench_sort_micro.cpp.o.d"
  "bench_sort_micro"
  "bench_sort_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sort_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
