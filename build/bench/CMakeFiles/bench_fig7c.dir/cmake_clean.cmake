file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7c.dir/bench_fig7c.cpp.o"
  "CMakeFiles/bench_fig7c.dir/bench_fig7c.cpp.o.d"
  "bench_fig7c"
  "bench_fig7c.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
