# Empty compiler generated dependencies file for bench_fig7c.
# This may be replaced when dependencies are built.
