# Empty compiler generated dependencies file for bench_alternatives.
# This may be replaced when dependencies are built.
