file(REMOVE_RECURSE
  "CMakeFiles/bench_alternatives.dir/bench_alternatives.cpp.o"
  "CMakeFiles/bench_alternatives.dir/bench_alternatives.cpp.o.d"
  "bench_alternatives"
  "bench_alternatives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_alternatives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
