file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_routing.dir/bench_ablation_routing.cpp.o"
  "CMakeFiles/bench_ablation_routing.dir/bench_ablation_routing.cpp.o.d"
  "bench_ablation_routing"
  "bench_ablation_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
