# Empty dependencies file for bench_ablation_routing.
# This may be replaced when dependencies are built.
