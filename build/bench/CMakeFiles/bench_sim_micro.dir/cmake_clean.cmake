file(REMOVE_RECURSE
  "CMakeFiles/bench_sim_micro.dir/bench_sim_micro.cpp.o"
  "CMakeFiles/bench_sim_micro.dir/bench_sim_micro.cpp.o.d"
  "bench_sim_micro"
  "bench_sim_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sim_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
