# Empty compiler generated dependencies file for bench_sim_micro.
# This may be replaced when dependencies are built.
