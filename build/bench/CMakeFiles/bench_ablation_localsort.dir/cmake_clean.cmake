file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_localsort.dir/bench_ablation_localsort.cpp.o"
  "CMakeFiles/bench_ablation_localsort.dir/bench_ablation_localsort.cpp.o.d"
  "bench_ablation_localsort"
  "bench_ablation_localsort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_localsort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
