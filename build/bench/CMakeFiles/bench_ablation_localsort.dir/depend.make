# Empty dependencies file for bench_ablation_localsort.
# This may be replaced when dependencies are built.
