# Empty dependencies file for bench_fig7d.
# This may be replaced when dependencies are built.
