file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7d.dir/bench_fig7d.cpp.o"
  "CMakeFiles/bench_fig7d.dir/bench_fig7d.cpp.o.d"
  "bench_fig7d"
  "bench_fig7d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
