file(REMOVE_RECURSE
  "CMakeFiles/bench_spares.dir/bench_spares.cpp.o"
  "CMakeFiles/bench_spares.dir/bench_spares.cpp.o.d"
  "bench_spares"
  "bench_spares.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spares.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
