# Empty dependencies file for bench_spares.
# This may be replaced when dependencies are built.
