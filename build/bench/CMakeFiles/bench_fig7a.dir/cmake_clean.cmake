file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7a.dir/bench_fig7a.cpp.o"
  "CMakeFiles/bench_fig7a.dir/bench_fig7a.cpp.o.d"
  "bench_fig7a"
  "bench_fig7a.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
