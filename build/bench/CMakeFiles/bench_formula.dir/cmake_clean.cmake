file(REMOVE_RECURSE
  "CMakeFiles/bench_formula.dir/bench_formula.cpp.o"
  "CMakeFiles/bench_formula.dir/bench_formula.cpp.o.d"
  "bench_formula"
  "bench_formula.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_formula.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
