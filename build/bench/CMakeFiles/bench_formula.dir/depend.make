# Empty dependencies file for bench_formula.
# This may be replaced when dependencies are built.
