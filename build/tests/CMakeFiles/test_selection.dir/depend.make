# Empty dependencies file for test_selection.
# This may be replaced when dependencies are built.
