file(REMOVE_RECURSE
  "CMakeFiles/test_selection.dir/test_selection.cpp.o"
  "CMakeFiles/test_selection.dir/test_selection.cpp.o.d"
  "test_selection"
  "test_selection.pdb"
  "test_selection[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
