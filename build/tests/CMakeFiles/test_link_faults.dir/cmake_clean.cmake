file(REMOVE_RECURSE
  "CMakeFiles/test_link_faults.dir/test_link_faults.cpp.o"
  "CMakeFiles/test_link_faults.dir/test_link_faults.cpp.o.d"
  "test_link_faults"
  "test_link_faults.pdb"
  "test_link_faults[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_link_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
