# Empty compiler generated dependencies file for test_link_faults.
# This may be replaced when dependencies are built.
