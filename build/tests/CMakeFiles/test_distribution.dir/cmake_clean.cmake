file(REMOVE_RECURSE
  "CMakeFiles/test_distribution.dir/test_distribution.cpp.o"
  "CMakeFiles/test_distribution.dir/test_distribution.cpp.o.d"
  "test_distribution"
  "test_distribution.pdb"
  "test_distribution[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
