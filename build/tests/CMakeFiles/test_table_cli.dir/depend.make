# Empty dependencies file for test_table_cli.
# This may be replaced when dependencies are built.
