# Empty dependencies file for test_spmd_bitonic.
# This may be replaced when dependencies are built.
