file(REMOVE_RECURSE
  "CMakeFiles/test_spmd_bitonic.dir/test_spmd_bitonic.cpp.o"
  "CMakeFiles/test_spmd_bitonic.dir/test_spmd_bitonic.cpp.o.d"
  "test_spmd_bitonic"
  "test_spmd_bitonic.pdb"
  "test_spmd_bitonic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spmd_bitonic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
