file(REMOVE_RECURSE
  "CMakeFiles/test_subcube.dir/test_subcube.cpp.o"
  "CMakeFiles/test_subcube.dir/test_subcube.cpp.o.d"
  "test_subcube"
  "test_subcube.pdb"
  "test_subcube[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_subcube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
