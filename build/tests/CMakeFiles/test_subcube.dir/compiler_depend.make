# Empty compiler generated dependencies file for test_subcube.
# This may be replaced when dependencies are built.
