# Empty compiler generated dependencies file for test_ring_sorter.
# This may be replaced when dependencies are built.
