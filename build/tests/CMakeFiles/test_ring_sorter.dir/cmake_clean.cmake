file(REMOVE_RECURSE
  "CMakeFiles/test_ring_sorter.dir/test_ring_sorter.cpp.o"
  "CMakeFiles/test_ring_sorter.dir/test_ring_sorter.cpp.o.d"
  "test_ring_sorter"
  "test_ring_sorter.pdb"
  "test_ring_sorter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ring_sorter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
