file(REMOVE_RECURSE
  "CMakeFiles/test_spares.dir/test_spares.cpp.o"
  "CMakeFiles/test_spares.dir/test_spares.cpp.o.d"
  "test_spares"
  "test_spares.pdb"
  "test_spares[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spares.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
