# Empty dependencies file for test_spares.
# This may be replaced when dependencies are built.
