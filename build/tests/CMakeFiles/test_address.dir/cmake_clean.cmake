file(REMOVE_RECURSE
  "CMakeFiles/test_address.dir/test_address.cpp.o"
  "CMakeFiles/test_address.dir/test_address.cpp.o.d"
  "test_address"
  "test_address.pdb"
  "test_address[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_address.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
