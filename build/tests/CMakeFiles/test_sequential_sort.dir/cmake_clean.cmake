file(REMOVE_RECURSE
  "CMakeFiles/test_sequential_sort.dir/test_sequential_sort.cpp.o"
  "CMakeFiles/test_sequential_sort.dir/test_sequential_sort.cpp.o.d"
  "test_sequential_sort"
  "test_sequential_sort.pdb"
  "test_sequential_sort[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sequential_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
