# Empty compiler generated dependencies file for test_sequential_sort.
# This may be replaced when dependencies are built.
