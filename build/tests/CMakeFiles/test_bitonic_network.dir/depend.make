# Empty dependencies file for test_bitonic_network.
# This may be replaced when dependencies are built.
