file(REMOVE_RECURSE
  "CMakeFiles/test_bitonic_network.dir/test_bitonic_network.cpp.o"
  "CMakeFiles/test_bitonic_network.dir/test_bitonic_network.cpp.o.d"
  "test_bitonic_network"
  "test_bitonic_network.pdb"
  "test_bitonic_network[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bitonic_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
