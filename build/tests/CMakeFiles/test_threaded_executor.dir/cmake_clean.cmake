file(REMOVE_RECURSE
  "CMakeFiles/test_threaded_executor.dir/test_threaded_executor.cpp.o"
  "CMakeFiles/test_threaded_executor.dir/test_threaded_executor.cpp.o.d"
  "test_threaded_executor"
  "test_threaded_executor.pdb"
  "test_threaded_executor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_threaded_executor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
