# Empty compiler generated dependencies file for test_threaded_executor.
# This may be replaced when dependencies are built.
