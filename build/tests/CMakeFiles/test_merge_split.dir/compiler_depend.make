# Empty compiler generated dependencies file for test_merge_split.
# This may be replaced when dependencies are built.
