file(REMOVE_RECURSE
  "CMakeFiles/test_merge_split.dir/test_merge_split.cpp.o"
  "CMakeFiles/test_merge_split.dir/test_merge_split.cpp.o.d"
  "test_merge_split"
  "test_merge_split.pdb"
  "test_merge_split[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_merge_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
