# Empty compiler generated dependencies file for test_integration_ftsort.
# This may be replaced when dependencies are built.
