file(REMOVE_RECURSE
  "CMakeFiles/test_integration_ftsort.dir/test_integration_ftsort.cpp.o"
  "CMakeFiles/test_integration_ftsort.dir/test_integration_ftsort.cpp.o.d"
  "test_integration_ftsort"
  "test_integration_ftsort.pdb"
  "test_integration_ftsort[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_ftsort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
