# Empty compiler generated dependencies file for test_trace_and_exchange.
# This may be replaced when dependencies are built.
