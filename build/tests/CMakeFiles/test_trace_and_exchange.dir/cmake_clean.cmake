file(REMOVE_RECURSE
  "CMakeFiles/test_trace_and_exchange.dir/test_trace_and_exchange.cpp.o"
  "CMakeFiles/test_trace_and_exchange.dir/test_trace_and_exchange.cpp.o.d"
  "test_trace_and_exchange"
  "test_trace_and_exchange.pdb"
  "test_trace_and_exchange[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_and_exchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
