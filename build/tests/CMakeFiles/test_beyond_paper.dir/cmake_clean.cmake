file(REMOVE_RECURSE
  "CMakeFiles/test_beyond_paper.dir/test_beyond_paper.cpp.o"
  "CMakeFiles/test_beyond_paper.dir/test_beyond_paper.cpp.o.d"
  "test_beyond_paper"
  "test_beyond_paper.pdb"
  "test_beyond_paper[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_beyond_paper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
