# Empty dependencies file for test_beyond_paper.
# This may be replaced when dependencies are built.
