# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_table_cli[1]_include.cmake")
include("/root/repo/build/tests/test_address[1]_include.cmake")
include("/root/repo/build/tests/test_subcube[1]_include.cmake")
include("/root/repo/build/tests/test_routing[1]_include.cmake")
include("/root/repo/build/tests/test_fault[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_sequential_sort[1]_include.cmake")
include("/root/repo/build/tests/test_merge_split[1]_include.cmake")
include("/root/repo/build/tests/test_bitonic_network[1]_include.cmake")
include("/root/repo/build/tests/test_distribution[1]_include.cmake")
include("/root/repo/build/tests/test_spmd_bitonic[1]_include.cmake")
include("/root/repo/build/tests/test_partition[1]_include.cmake")
include("/root/repo/build/tests/test_selection[1]_include.cmake")
include("/root/repo/build/tests/test_baseline[1]_include.cmake")
include("/root/repo/build/tests/test_integration_ftsort[1]_include.cmake")
include("/root/repo/build/tests/test_property_sweeps[1]_include.cmake")
include("/root/repo/build/tests/test_threaded_executor[1]_include.cmake")
include("/root/repo/build/tests/test_link_faults[1]_include.cmake")
include("/root/repo/build/tests/test_beyond_paper[1]_include.cmake")
include("/root/repo/build/tests/test_analytic[1]_include.cmake")
include("/root/repo/build/tests/test_collectives[1]_include.cmake")
include("/root/repo/build/tests/test_spares[1]_include.cmake")
include("/root/repo/build/tests/test_ring_sorter[1]_include.cmake")
include("/root/repo/build/tests/test_trace_and_exchange[1]_include.cmake")
