// `ftdiag`: differential diagnosis for simulator runs. See tools/ftdiag.hpp
// for the commands and exit codes.
#include <iostream>

#include "tools/ftdiag.hpp"

int main(int argc, char** argv) {
  return ftsort::tools::run_cli(argc, argv, std::cout, std::cerr);
}
