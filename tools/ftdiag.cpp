#include "tools/ftdiag.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <string>

#include "sim/phase.hpp"
#include "util/schema.hpp"

namespace ftsort::tools {

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON scanning, in lockstep with the repo's hand-rolled writers
// (sim::write_chrome_trace, sim::write_metrics_json, bench_harness
// write_json). Not a general parser: it only needs the exact shapes those
// emit, plus whitespace tolerance.

/// Index one past the matching close for the `open` at `start`; npos on
/// imbalance. String-aware (quoted text may contain braces).
std::size_t match_delim(const std::string& text, std::size_t start,
                        char open, char close) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = start; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\')
        ++i;
      else if (c == '"')
        in_string = false;
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == open) {
      ++depth;
    } else if (c == close) {
      if (--depth == 0) return i + 1;
    }
  }
  return std::string::npos;
}

/// Value of a `"key": "string"` field inside `obj`, or empty.
std::string string_field(const std::string& obj, const char* key) {
  const std::string needle = std::string("\"") + key + "\": \"";
  const std::size_t at = obj.find(needle);
  if (at == std::string::npos) return {};
  const std::size_t begin = at + needle.size();
  const std::size_t end = obj.find('"', begin);
  if (end == std::string::npos) return {};
  return obj.substr(begin, end - begin);
}

/// Numeric `"key": value` field inside `obj`; false when absent.
bool num_field(const std::string& obj, const char* key, double* out) {
  const std::string needle = std::string("\"") + key + "\": ";
  const std::size_t at = obj.find(needle);
  if (at == std::string::npos) return false;
  const char* begin = obj.c_str() + at + needle.size();
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  if (end == begin) return false;
  *out = v;
  return true;
}

double num_or(const std::string& obj, const char* key, double fallback) {
  double v = fallback;
  num_field(obj, key, &v);
  return v;
}

// Newest schema version each reader understands — derived from the one
// shared writer/reader table (util/schema.hpp), so the readers can never
// lag the writers. Files *older* than the ceiling still parse (new keys
// are additive and simply absent); files *newer* than the ceiling are
// refused with a versioned message instead of a silent misparse.
constexpr double kMetricsSchemaMax = util::kMetricsSchemaVersion;
constexpr double kBenchSchemaMax = util::kBenchSchemaVersion;
constexpr double kCampaignSchemaMax = util::kCampaignSchemaVersion;
constexpr double kWatchdogSchemaMax = util::kWatchdogDumpSchemaVersion;

/// Refuses documents newer than `ceiling`. `what` names the format in
/// the error ("metrics JSON", ...). A missing schema_version (hand-made
/// fixtures, pre-versioning files) passes: absent means v0.
bool check_schema_ceiling(const std::string& text, const char* what,
                          double ceiling, std::string* err) {
  const double sv = num_or(text, "schema_version", 0.0);
  if (sv <= ceiling) return true;
  char buf[96];
  std::snprintf(buf, sizeof buf, "%s is schema v%g, this build reads up to v%g",
                what, sv, ceiling);
  *err = buf;
  return false;
}

// ---------------------------------------------------------------------------
// diff: parsed per-run phase samples.

struct PhaseSample {
  double critical_time = 0.0;
  double critical_comm = 0.0;
  double critical_compute = 0.0;
  bool has_split = false;  ///< comm/compute columns present (metrics format)
};

struct RunSample {
  std::string scenario;  ///< empty for the single-run metrics format
  double makespan = 0.0;
  /// Cost-model signature ("name/routing t_c=.. t_t=.. t_s=..") parsed
  /// from the export's cost_model block; empty for pre-v4 metrics /
  /// pre-v3 bench files that did not record one. Two runs only compare
  /// when their signatures are absent or equal — critical_time is in
  /// cost-model units, so cross-model deltas are meaningless.
  std::string cost_sig;
  // Ordered map: deterministic iteration -> deterministic report text.
  std::map<std::string, PhaseSample> phases;
};

struct ParsedDoc {
  bool ok = false;
  std::string error;
  bool bench_format = false;  ///< true = bench scenarios, false = metrics
  std::vector<RunSample> runs;
};

/// Signature of the `"cost_model": { ... }` block inside `obj` (a whole
/// metrics export or one bench scenario object), or empty when the block
/// is absent. Formats the constants with %g so the signature is stable
/// across the %.17g writers in both exporters.
std::string cost_signature(const std::string& obj) {
  const std::size_t at = obj.find("\"cost_model\": {");
  if (at == std::string::npos) return {};
  const std::size_t open = obj.find('{', at);
  const std::size_t end = match_delim(obj, open, '{', '}');
  if (end == std::string::npos) return {};
  const std::string block = obj.substr(open, end - open);
  char buf[160];
  std::snprintf(buf, sizeof buf, "%s/%s t_c=%g t_t=%g t_s=%g",
                string_field(block, "name").c_str(),
                string_field(block, "routing").c_str(),
                num_or(block, "t_compare", 0.0),
                num_or(block, "t_transfer", 0.0),
                num_or(block, "t_startup", 0.0));
  return buf;
}

/// Parse one `{"phase"|name: {...}}`-style slice object into `out`.
void read_phase_counters(const std::string& obj, PhaseSample* out) {
  out->critical_time = num_or(obj, "critical_time", 0.0);
  double comm = 0.0;
  double compute = 0.0;
  const bool has_comm = num_field(obj, "critical_comm", &comm);
  const bool has_compute = num_field(obj, "critical_compute", &compute);
  out->critical_comm = comm;
  out->critical_compute = compute;
  out->has_split = has_comm && has_compute;
}

/// Metrics format: top-level `"phases": [ {"phase": "name", ...}, ... ]`.
bool parse_metrics_doc(const std::string& text, ParsedDoc* doc,
                       std::string* err) {
  if (!check_schema_ceiling(text, "metrics JSON", kMetricsSchemaMax, err))
    return false;
  RunSample run;
  run.makespan = num_or(text, "makespan", 0.0);
  run.cost_sig = cost_signature(text);
  const std::size_t at = text.find("\"phases\": [");
  if (at == std::string::npos) {
    *err = "metrics JSON without a \"phases\" array";
    return false;
  }
  std::size_t pos = text.find('[', at);
  const std::size_t stop = match_delim(text, pos, '[', ']');
  if (stop == std::string::npos) {
    *err = "unterminated \"phases\" array";
    return false;
  }
  while (true) {
    pos = text.find('{', pos);
    if (pos == std::string::npos || pos >= stop) break;
    const std::size_t end = match_delim(text, pos, '{', '}');
    if (end == std::string::npos) {
      *err = "unterminated phase object";
      return false;
    }
    const std::string obj = text.substr(pos, end - pos);
    const std::string name = string_field(obj, "phase");
    if (name.empty()) {
      *err = "phase object without a \"phase\" name: " + obj;
      return false;
    }
    read_phase_counters(obj, &run.phases[name]);
    pos = end;
  }
  doc->bench_format = false;
  doc->runs.push_back(std::move(run));
  return true;
}

/// Bench format: `"scenarios": [ {"name": ..., "phases": { ... }}, ... ]`.
bool parse_bench_doc(const std::string& text, ParsedDoc* doc,
                     std::string* err) {
  if (!check_schema_ceiling(text, "bench JSON", kBenchSchemaMax, err))
    return false;
  std::size_t pos = text.find('[', text.find("\"scenarios\""));
  if (pos == std::string::npos) {
    *err = "bench JSON without a \"scenarios\" array";
    return false;
  }
  const std::size_t stop = match_delim(text, pos, '[', ']');
  if (stop == std::string::npos) {
    *err = "unterminated \"scenarios\" array";
    return false;
  }
  while (true) {
    pos = text.find('{', pos);
    if (pos == std::string::npos || pos >= stop) break;
    const std::size_t end = match_delim(text, pos, '{', '}');
    if (end == std::string::npos) {
      *err = "unterminated scenario object";
      return false;
    }
    const std::string obj = text.substr(pos, end - pos);
    RunSample run;
    run.scenario = string_field(obj, "name");
    if (run.scenario.empty()) {
      *err = "scenario without a \"name\"";
      return false;
    }
    run.makespan = num_or(obj, "makespan", 0.0);
    run.cost_sig = cost_signature(obj);
    const std::size_t ph = obj.find("\"phases\": {");
    if (ph != std::string::npos) {
      std::size_t p = obj.find('{', ph);
      const std::size_t pstop = match_delim(obj, p, '{', '}');
      if (pstop == std::string::npos) {
        *err = "unterminated \"phases\" object in scenario " + run.scenario;
        return false;
      }
      ++p;  // step inside the phases object
      while (true) {
        // Each entry is `"phase_name": { ... }`.
        const std::size_t q = obj.find('"', p);
        if (q == std::string::npos || q >= pstop - 1) break;
        const std::size_t qe = obj.find('"', q + 1);
        if (qe == std::string::npos || qe >= pstop) break;
        const std::string name = obj.substr(q + 1, qe - q - 1);
        const std::size_t body = obj.find('{', qe);
        if (body == std::string::npos || body >= pstop) break;
        const std::size_t bend = match_delim(obj, body, '{', '}');
        if (bend == std::string::npos) {
          *err = "unterminated phase entry \"" + name + "\"";
          return false;
        }
        read_phase_counters(obj.substr(body, bend - body),
                            &run.phases[name]);
        p = bend;
      }
    }
    doc->runs.push_back(std::move(run));
    pos = end;
  }
  doc->bench_format = true;
  return true;
}

ParsedDoc parse_doc(const std::string& text) {
  ParsedDoc doc;
  std::string err;
  const bool ok = text.find("\"scenarios\"") != std::string::npos
                      ? parse_bench_doc(text, &doc, &err)
                      : parse_metrics_doc(text, &doc, &err);
  doc.ok = ok;
  doc.error = err;
  return doc;
}

void put_pct(std::ostream& os, double pct) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%+.1f%%", pct);
  os << buf;
}

void put_us(std::ostream& os, double us) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", us);
  os << buf;
}

}  // namespace

// ---------------------------------------------------------------------------
// explain

ExplainResult explain_trace_json(const std::string& json) {
  ExplainResult res;
  const std::size_t wrapper = json.find("\"traceEvents\"");
  if (wrapper == std::string::npos) {
    res.error = "not a Chrome trace: missing \"traceEvents\"";
    return res;
  }
  std::size_t pos = json.find('[', wrapper);
  if (pos == std::string::npos) {
    res.error = "missing traceEvents array";
    return res;
  }
  const std::size_t stop = match_delim(json, pos, '[', ']');
  if (stop == std::string::npos) {
    res.error = "unterminated traceEvents array";
    return res;
  }

  sim::DiagnosisInput input;
  while (true) {
    pos = json.find('{', pos);
    if (pos == std::string::npos || pos >= stop) break;
    const std::size_t end = match_delim(json, pos, '{', '}');
    if (end == std::string::npos) {
      res.error = "unterminated event object";
      return res;
    }
    const std::string obj = json.substr(pos, end - pos);
    pos = end;
    const std::string name = string_field(obj, "name");
    if (name == "trace_dropped") {
      // Ring-eviction metadata (always exported, count 0 = complete
      // trace). A nonzero count makes diagnose() degrade a silent-peer
      // verdict to RootKind::Evicted instead of guessing from a partial
      // event stream.
      input.trace_dropped =
          static_cast<std::uint64_t>(num_or(obj, "count", 0.0));
      continue;
    }
    if (name != "timeout" && name != "kill") continue;
    double ts = 0.0;
    double tid = 0.0;
    if (!num_field(obj, "ts", &ts) || !num_field(obj, "tid", &tid)) {
      res.error = "fault instant without ts/tid: " + obj;
      return res;
    }
    const sim::Phase phase =
        sim::phase_from_name(string_field(obj, "phase"));
    const auto node = static_cast<cube::NodeId>(tid);
    if (name == "timeout") {
      ++res.timeout_events;
      input.waits.push_back(
          {node, static_cast<cube::NodeId>(num_or(obj, "src", 0.0)),
           static_cast<sim::Tag>(num_or(obj, "tag", 0.0)), ts, phase,
           /*expired=*/true});
    } else {
      ++res.kill_events;
      input.kills.push_back({node, ts, phase});
    }
  }

  const sim::Diagnosis::Kind kind =
      res.timeout_events > 0  ? sim::Diagnosis::Kind::TimeoutBurst
      : res.kill_events > 0   ? sim::Diagnosis::Kind::NodeLoss
                              : sim::Diagnosis::Kind::None;
  res.diagnosis = sim::diagnose(std::move(input), kind);
  res.ok = true;

  std::ostringstream out;
  out << "ftdiag explain: " << res.timeout_events << " timeout(s), "
      << res.kill_events << " kill(s) in trace\n";
  if (res.diagnosis.triggered())
    out << res.diagnosis.to_string() << "\n";
  else
    out << "no failure evidence recorded; nothing to explain\n";
  res.text = out.str();
  return res;
}

// ---------------------------------------------------------------------------
// diff

DiffResult diff_json(const std::string& a, const std::string& b,
                     double threshold_pct) {
  DiffResult res;
  res.threshold_pct = threshold_pct;
  const ParsedDoc da = parse_doc(a);
  if (!da.ok) {
    res.error = "first file: " + da.error;
    return res;
  }
  const ParsedDoc db = parse_doc(b);
  if (!db.ok) {
    res.error = "second file: " + db.error;
    return res;
  }
  if (da.bench_format != db.bench_format) {
    res.error = "format mismatch: one file is a bench export, the other a "
                "metrics export";
    return res;
  }

  std::ostringstream out;
  out << "ftdiag diff (threshold \xC2\xB1";
  put_us(out, threshold_pct);
  out << "% on per-phase critical_time)\n";

  std::size_t compared = 0;
  for (const RunSample& ra : da.runs) {
    const RunSample* rb = nullptr;
    for (const RunSample& cand : db.runs)
      if (cand.scenario == ra.scenario) {
        rb = &cand;
        break;
      }
    if (rb == nullptr) continue;  // scenario dropped between runs
    // Refuse cross-model comparisons outright: critical_time is measured
    // in cost-model units, so a delta against a different model (or
    // routing mode) is noise dressed as a regression. Files predating the
    // cost_model block (empty signature) still compare for compatibility.
    if (!ra.cost_sig.empty() && !rb->cost_sig.empty() &&
        ra.cost_sig != rb->cost_sig) {
      res.error = "cost model mismatch" +
                  (ra.scenario.empty() ? std::string()
                                       : " in scenario " + ra.scenario) +
                  ": \"" + ra.cost_sig + "\" vs \"" + rb->cost_sig +
                  "\" — refusing to compare runs under different cost models";
      res.ok = false;
      return res;
    }
    const std::string where =
        ra.scenario.empty() ? std::string() : ra.scenario + " ";
    if (ra.makespan > 0.0 && rb->makespan > 0.0 &&
        ra.makespan != rb->makespan) {
      out << "  " << where << "makespan ";
      put_us(out, ra.makespan);
      out << " -> ";
      put_us(out, rb->makespan);
      out << " (";
      put_pct(out, 100.0 * (rb->makespan - ra.makespan) / ra.makespan);
      out << ")\n";
    }
    for (const auto& [phase, pa] : ra.phases) {
      const auto it = rb->phases.find(phase);
      if (it == rb->phases.end()) continue;
      const PhaseSample& pb = it->second;
      if (pa.critical_time == 0.0 && pb.critical_time == 0.0) continue;
      ++compared;
      PhaseDelta d;
      d.scenario = ra.scenario;
      d.phase = phase;
      d.before = pa.critical_time;
      d.after = pb.critical_time;
      d.delta_pct = pa.critical_time > 0.0
                        ? 100.0 * (pb.critical_time - pa.critical_time) /
                              pa.critical_time
                        : 100.0;
      d.regression = std::fabs(d.delta_pct) > threshold_pct;
      if (pa.has_split && pb.has_split) {
        const double dcomm = pb.critical_comm - pa.critical_comm;
        const double dcompute = pb.critical_compute - pa.critical_compute;
        d.attribution =
            std::fabs(dcomm) >= std::fabs(dcompute) ? "comm" : "compute";
      }
      if (d.regression || d.delta_pct != 0.0) {
        out << "  " << where << phase << ": critical_time ";
        put_us(out, d.before);
        out << " -> ";
        put_us(out, d.after);
        out << " (";
        put_pct(out, d.delta_pct);
        out << ")";
        if (!d.attribution.empty()) out << " [" << d.attribution << "]";
        if (d.regression) out << " REGRESSION";
        out << "\n";
      }
      if (d.regression) ++res.regressions;
      res.deltas.push_back(std::move(d));
    }
  }
  out << "summary: " << res.regressions << " regression(s) beyond \xC2\xB1";
  put_us(out, threshold_pct);
  out << "% across " << compared << " compared phase(s)\n";
  res.ok = true;
  res.text = out.str();
  return res;
}

// ---------------------------------------------------------------------------
// hotspots

namespace {

/// One cube dimension's parsed traffic rollup.
struct DimTraffic {
  double traversals = 0.0;
  double key_hops = 0.0;
  double busy = 0.0;
  double utilization = 0.0;
};

/// Link telemetry of one run (metrics export) or scenario (bench export).
struct LinkRun {
  std::string scenario;  ///< empty for the single-run metrics format
  double total_key_hops = 0.0;
  std::map<int, DimTraffic> dims;
  // Communication volume per phase: key_hops for the metrics format,
  // keys_sent for the bench format (which carries no per-phase hops).
  std::map<std::string, double> phase_comm;
};

void read_dim_entry(const std::string& obj, DimTraffic* out) {
  out->traversals = num_or(obj, "traversals", 0.0);
  out->key_hops = num_or(obj, "key_hops", 0.0);
  out->busy = num_or(obj, "busy", 0.0);
  out->utilization = num_or(obj, "utilization", 0.0);
}

/// Metrics format: the `"links"` block plus per-phase `key_hops`.
bool parse_links_metrics(const std::string& text, std::vector<LinkRun>* runs,
                         std::string* err) {
  if (!check_schema_ceiling(text, "metrics JSON", kMetricsSchemaMax, err))
    return false;
  const std::size_t at = text.find("\"links\": {");
  if (at == std::string::npos) {
    *err = "metrics JSON without a \"links\" block (schema v3 required)";
    return false;
  }
  const std::size_t block_start = text.find('{', at);
  const std::size_t block_end = match_delim(text, block_start, '{', '}');
  if (block_end == std::string::npos) {
    *err = "unterminated \"links\" block";
    return false;
  }
  const std::string block = text.substr(block_start, block_end - block_start);
  if (block.find("\"enabled\": true") == std::string::npos) {
    *err = "run recorded no link telemetry (record_link_stats off)";
    return false;
  }
  LinkRun run;
  const std::size_t tot = block.find("\"total\": {");
  if (tot != std::string::npos)
    run.total_key_hops =
        num_or(block.substr(tot, block.find('}', tot) - tot), "key_hops", 0.0);
  std::size_t pos = block.find("\"per_dimension\"");
  while (pos != std::string::npos) {
    pos = block.find('{', pos);
    if (pos == std::string::npos) break;
    const std::size_t end = match_delim(block, pos, '{', '}');
    if (end == std::string::npos) break;
    const std::string obj = block.substr(pos, end - pos);
    double d = -1.0;
    if (num_field(obj, "dim", &d) && d >= 0.0)
      read_dim_entry(obj, &run.dims[static_cast<int>(d)]);
    pos = end;
  }
  // Per-phase comm volume from the phases array.
  const std::size_t ph = text.find("\"phases\": [");
  if (ph != std::string::npos) {
    std::size_t p = text.find('[', ph);
    const std::size_t pstop = match_delim(text, p, '[', ']');
    while (pstop != std::string::npos) {
      p = text.find('{', p);
      if (p == std::string::npos || p >= pstop) break;
      const std::size_t end = match_delim(text, p, '{', '}');
      if (end == std::string::npos) break;
      const std::string obj = text.substr(p, end - p);
      const std::string name = string_field(obj, "phase");
      const double hops = num_or(obj, "key_hops", 0.0);
      if (!name.empty() && hops > 0.0) run.phase_comm[name] = hops;
      p = end;
    }
  }
  runs->push_back(std::move(run));
  return true;
}

/// Bench format: per-scenario `link_key_hops` / `"link_dimensions"`.
bool parse_links_bench(const std::string& text, std::vector<LinkRun>* runs,
                       std::string* err) {
  if (!check_schema_ceiling(text, "bench JSON", kBenchSchemaMax, err))
    return false;
  std::size_t pos = text.find('[', text.find("\"scenarios\""));
  if (pos == std::string::npos) {
    *err = "bench JSON without a \"scenarios\" array";
    return false;
  }
  const std::size_t stop = match_delim(text, pos, '[', ']');
  if (stop == std::string::npos) {
    *err = "unterminated \"scenarios\" array";
    return false;
  }
  while (true) {
    pos = text.find('{', pos);
    if (pos == std::string::npos || pos >= stop) break;
    const std::size_t end = match_delim(text, pos, '{', '}');
    if (end == std::string::npos) {
      *err = "unterminated scenario object";
      return false;
    }
    const std::string obj = text.substr(pos, end - pos);
    pos = end;
    const std::size_t ld = obj.find("\"link_dimensions\": {");
    if (ld == std::string::npos) continue;  // kernel micro: no link data
    LinkRun run;
    run.scenario = string_field(obj, "name");
    run.total_key_hops = num_or(obj, "link_key_hops", 0.0);
    std::size_t p = obj.find('{', ld);
    const std::size_t pstop = match_delim(obj, p, '{', '}');
    if (pstop == std::string::npos) {
      *err = "unterminated \"link_dimensions\" in scenario " + run.scenario;
      return false;
    }
    ++p;
    while (true) {
      // Each entry is `"<dim>": { ... }`.
      const std::size_t q = obj.find('"', p);
      if (q == std::string::npos || q >= pstop - 1) break;
      const std::size_t qe = obj.find('"', q + 1);
      if (qe == std::string::npos || qe >= pstop) break;
      const int d = std::atoi(obj.substr(q + 1, qe - q - 1).c_str());
      const std::size_t body = obj.find('{', qe);
      if (body == std::string::npos || body >= pstop) break;
      const std::size_t bend = match_delim(obj, body, '{', '}');
      if (bend == std::string::npos) break;
      read_dim_entry(obj.substr(body, bend - body), &run.dims[d]);
      p = bend;
    }
    // Comm volume per phase: the bench rows carry keys_sent.
    const std::size_t ph = obj.find("\"phases\": {");
    if (ph != std::string::npos) {
      std::size_t pp = obj.find('{', ph);
      const std::size_t ppstop = match_delim(obj, pp, '{', '}');
      ++pp;
      while (ppstop != std::string::npos) {
        const std::size_t q = obj.find('"', pp);
        if (q == std::string::npos || q >= ppstop - 1) break;
        const std::size_t qe = obj.find('"', q + 1);
        if (qe == std::string::npos || qe >= ppstop) break;
        const std::string name = obj.substr(q + 1, qe - q - 1);
        const std::size_t body = obj.find('{', qe);
        if (body == std::string::npos || body >= ppstop) break;
        const std::size_t bend = match_delim(obj, body, '{', '}');
        if (bend == std::string::npos) break;
        const double keys =
            num_or(obj.substr(body, bend - body), "keys_sent", 0.0);
        if (keys > 0.0) run.phase_comm[name] = keys;
        pp = bend;
      }
    }
    runs->push_back(std::move(run));
  }
  if (runs->empty()) {
    *err = "no scenario carries link telemetry (link_dimensions)";
    return false;
  }
  return true;
}

bool parse_links_doc(const std::string& text, std::vector<LinkRun>* runs,
                     std::string* err) {
  return text.find("\"scenarios\"") != std::string::npos
             ? parse_links_bench(text, runs, err)
             : parse_links_metrics(text, runs, err);
}

}  // namespace

HotspotsResult hotspots_report(const std::string& json, std::size_t top_k) {
  HotspotsResult res;
  std::vector<LinkRun> runs;
  if (!parse_links_doc(json, &runs, &res.error)) return res;

  std::ostringstream out;
  out << "ftdiag hotspots (dimensions ranked by wire busy time)\n";
  for (const LinkRun& run : runs) {
    const std::string where =
        run.scenario.empty() ? std::string() : run.scenario + " ";
    out << "  " << where << "total key_hops ";
    put_us(out, run.total_key_hops);
    out << " across " << run.dims.size() << " dimension(s)\n";

    // Rank dimensions by busy time; ties broken by index for determinism.
    std::vector<std::pair<int, DimTraffic>> ranked(run.dims.begin(),
                                                   run.dims.end());
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      if (a.second.busy != b.second.busy) return a.second.busy > b.second.busy;
      return a.first < b.first;
    });
    const std::size_t shown =
        top_k == 0 ? ranked.size() : std::min(top_k, ranked.size());
    for (std::size_t i = 0; i < shown; ++i) {
      const auto& [d, t] = ranked[i];
      out << "    dim " << d << ": busy ";
      put_us(out, t.busy);
      out << " us, key_hops ";
      put_us(out, t.key_hops);
      out << ", traversals ";
      put_us(out, t.traversals);
      out << ", utilization ";
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.3f", t.utilization);
      out << buf << "\n";
    }

    // Comm attribution: which paper phases pushed the traffic.
    double comm_total = 0.0;
    for (const auto& [name, v] : run.phase_comm) comm_total += v;
    if (comm_total > 0.0) {
      std::vector<std::pair<std::string, double>> phases(
          run.phase_comm.begin(), run.phase_comm.end());
      std::sort(phases.begin(), phases.end(),
                [](const auto& a, const auto& b) {
                  if (a.second != b.second) return a.second > b.second;
                  return a.first < b.first;
                });
      out << "    comm by phase:";
      for (const auto& [name, v] : phases) {
        char pct[32];
        std::snprintf(pct, sizeof pct, "%.1f%%", 100.0 * v / comm_total);
        out << " " << name << " " << pct;
      }
      out << "\n";
    }
  }
  res.ok = true;
  res.text = out.str();
  return res;
}

HotspotsResult hotspots_diff(const std::string& a, const std::string& b,
                             double threshold_pct) {
  HotspotsResult res;
  res.threshold_pct = threshold_pct;
  std::vector<LinkRun> ra;
  std::vector<LinkRun> rb;
  std::string err;
  if (!parse_links_doc(a, &ra, &err)) {
    res.error = "first file: " + err;
    return res;
  }
  if (!parse_links_doc(b, &rb, &err)) {
    res.error = "second file: " + err;
    return res;
  }

  std::ostringstream out;
  out << "ftdiag hotspots diff (threshold \xC2\xB1";
  put_us(out, threshold_pct);
  out << "% on per-dimension key_hops)\n";
  std::size_t compared = 0;
  for (const LinkRun& run_a : ra) {
    const LinkRun* run_b = nullptr;
    for (const LinkRun& cand : rb)
      if (cand.scenario == run_a.scenario) {
        run_b = &cand;
        break;
      }
    if (run_b == nullptr) continue;  // scenario dropped between runs
    const std::string where =
        run_a.scenario.empty() ? std::string() : run_a.scenario + " ";
    // Union of dimensions: traffic appearing on a new dimension (or
    // vanishing from an old one) is exactly what this gate must catch.
    std::map<int, std::pair<double, double>> merged;
    for (const auto& [d, t] : run_a.dims) merged[d].first = t.key_hops;
    for (const auto& [d, t] : run_b->dims) merged[d].second = t.key_hops;
    merged[-1] = {run_a.total_key_hops, run_b->total_key_hops};  // the total
    for (const auto& [d, kv] : merged) {
      const auto [before, after] = kv;
      if (before == 0.0 && after == 0.0) continue;
      ++compared;
      DimDelta delta;
      delta.scenario = run_a.scenario;
      delta.dim = d;
      delta.before = before;
      delta.after = after;
      delta.delta_pct =
          before > 0.0 ? 100.0 * (after - before) / before : 100.0;
      delta.regression = std::fabs(delta.delta_pct) > threshold_pct;
      if (delta.regression || delta.delta_pct != 0.0) {
        out << "  " << where
            << (d < 0 ? std::string("total") : "dim " + std::to_string(d))
            << ": key_hops ";
        put_us(out, before);
        out << " -> ";
        put_us(out, after);
        out << " (";
        put_pct(out, delta.delta_pct);
        out << ")";
        if (delta.regression) out << " REGRESSION";
        out << "\n";
      }
      if (delta.regression) ++res.regressions;
      res.deltas.push_back(std::move(delta));
    }
  }
  out << "summary: " << res.regressions << " regression(s) beyond \xC2\xB1";
  put_us(out, threshold_pct);
  out << "% across " << compared << " compared counter(s)\n";
  res.ok = true;
  res.text = out.str();
  return res;
}

// ---------------------------------------------------------------------------
// campaign

namespace {

/// One parsed per-r bucket row of a campaign JSON block.
struct CampaignBucket {
  int r = 0;
  double trials = 0.0;
  double completed = 0.0;
  double recovered = 0.0;
  double degraded = 0.0;
  double deadlocked = 0.0;
  double corrupt = 0.0;
  double failed = 0.0;
  double completion_probability = 0.0;
  double mean_slowdown = 0.0;
  double mean_detect = 0.0;
  double mean_makespan = 0.0;
  double hotspot_p90 = 0.0;
  double detect_latency_p50 = 0.0;
  double salvage_latency_p50 = 0.0;
  double restart_latency_p50 = 0.0;
};

/// Parsed header + buckets of a schema-v4 campaign document.
struct CampaignDoc {
  double n = 0.0;
  double r_max = 0.0;
  double scenarios = 0.0;
  double trials = 0.0;
  double seed = 0.0;
  std::string executor;
  std::string outcomes;  ///< the raw rollup object, echoed verbatim
  std::vector<CampaignBucket> buckets;
};

bool parse_campaign_doc(const std::string& text, CampaignDoc* doc,
                        std::string* err) {
  if (string_field(text, "campaign") != "fault_mc") {
    *err = "not a campaign export: missing \"campaign\": \"fault_mc\"";
    return false;
  }
  // The campaign reader is exact-version: the bucket keys it relies on
  // changed meaning across versions, so both older and newer files get
  // the versioned refusal rather than zero-filled columns.
  const double sv = num_or(text, "schema_version", 0.0);
  if (sv != kCampaignSchemaMax) {
    char buf[96];
    std::snprintf(buf, sizeof buf,
                  "campaign JSON is schema v%g, this build reads v%g", sv,
                  kCampaignSchemaMax);
    *err = buf;
    return false;
  }
  doc->n = num_or(text, "n", 0.0);
  doc->r_max = num_or(text, "r_max", 0.0);
  doc->scenarios = num_or(text, "scenarios", 0.0);
  doc->trials = num_or(text, "trials", 0.0);
  doc->seed = num_or(text, "seed", 0.0);
  doc->executor = string_field(text, "executor");
  const std::size_t oc = text.find("\"outcomes\": {");
  if (oc != std::string::npos) {
    const std::size_t start = text.find('{', oc);
    const std::size_t end = match_delim(text, start, '{', '}');
    if (end != std::string::npos)
      doc->outcomes = text.substr(start + 1, end - start - 2);
  }
  std::size_t pos = text.find("\"buckets\": [");
  if (pos == std::string::npos) {
    *err = "campaign JSON without a \"buckets\" array";
    return false;
  }
  pos = text.find('[', pos);
  const std::size_t stop = match_delim(text, pos, '[', ']');
  if (stop == std::string::npos) {
    *err = "unterminated \"buckets\" array";
    return false;
  }
  while (true) {
    pos = text.find('{', pos);
    if (pos == std::string::npos || pos >= stop) break;
    const std::size_t end = match_delim(text, pos, '{', '}');
    if (end == std::string::npos) {
      *err = "unterminated bucket object";
      return false;
    }
    const std::string obj = text.substr(pos, end - pos);
    pos = end;
    CampaignBucket b;
    double r = -1.0;
    if (!num_field(obj, "r", &r) || r < 0.0) {
      *err = "bucket object without an \"r\" field";
      return false;
    }
    b.r = static_cast<int>(r);
    b.trials = num_or(obj, "trials", 0.0);
    b.completed = num_or(obj, "completed", 0.0);
    b.recovered = num_or(obj, "recovered", 0.0);
    b.degraded = num_or(obj, "degraded", 0.0);
    b.deadlocked = num_or(obj, "deadlocked", 0.0);
    b.corrupt = num_or(obj, "corrupt", 0.0);
    b.failed = num_or(obj, "failed", 0.0);
    b.completion_probability = num_or(obj, "completion_probability", 0.0);
    b.mean_slowdown = num_or(obj, "mean_slowdown", 0.0);
    b.mean_detect = num_or(obj, "mean_detect", 0.0);
    b.mean_makespan = num_or(obj, "mean_makespan", 0.0);
    b.hotspot_p90 = num_or(obj, "hotspot_p90", 0.0);
    b.detect_latency_p50 = num_or(obj, "detect_latency_p50", 0.0);
    b.salvage_latency_p50 = num_or(obj, "salvage_latency_p50", 0.0);
    b.restart_latency_p50 = num_or(obj, "restart_latency_p50", 0.0);
    doc->buckets.push_back(b);
  }
  if (doc->buckets.empty()) {
    *err = "campaign JSON with an empty \"buckets\" array";
    return false;
  }
  return true;
}

}  // namespace

CampaignCliResult campaign_report(const std::string& json) {
  CampaignCliResult res;
  CampaignDoc doc;
  if (!parse_campaign_doc(json, &doc, &res.error)) return res;

  std::ostringstream out;
  out << "ftdiag campaign: Q_" << static_cast<int>(doc.n) << ", r <= "
      << static_cast<int>(doc.r_max) << ", "
      << static_cast<long>(doc.trials) << " trial(s) over "
      << static_cast<long>(doc.scenarios) << " scenario(s), seed "
      << static_cast<unsigned long long>(doc.seed) << ", " << doc.executor
      << " executor\n";
  if (!doc.outcomes.empty()) out << "  outcomes: " << doc.outcomes << "\n";
  char line[224];
  std::snprintf(line, sizeof line,
                "  %-3s %7s %10s %10s %9s %12s %14s %12s %11s %12s %12s\n",
                "r", "trials", "completed", "recovered", "degraded",
                "P(complete)", "mean_slowdown", "hotspot_p90", "detect_p50",
                "salvage_p50", "restart_p50");
  out << line;
  for (const CampaignBucket& b : doc.buckets) {
    std::snprintf(line, sizeof line,
                  "  %-3d %7ld %10ld %10ld %9ld %12.3f %14.3f %12.3f "
                  "%11.0f %12.0f %12.0f\n",
                  b.r, static_cast<long>(b.trials),
                  static_cast<long>(b.completed),
                  static_cast<long>(b.recovered),
                  static_cast<long>(b.degraded), b.completion_probability,
                  b.mean_slowdown, b.hotspot_p90, b.detect_latency_p50,
                  b.salvage_latency_p50, b.restart_latency_p50);
    out << line;
  }
  for (std::size_t i = 1; i < doc.buckets.size(); ++i)
    if (doc.buckets[i].completion_probability >
        doc.buckets[i - 1].completion_probability)
      res.monotone = false;
  out << "  completion curve: "
      << (res.monotone ? "monotone non-increasing in r"
                       : "NOT monotone (coupling violated?)")
      << "\n";
  res.ok = true;
  res.text = out.str();
  return res;
}

CampaignCliResult campaign_diff(const std::string& a, const std::string& b,
                                double threshold_pct) {
  CampaignCliResult res;
  res.threshold_pct = threshold_pct;
  CampaignDoc da;
  CampaignDoc db;
  std::string err;
  if (!parse_campaign_doc(a, &da, &err)) {
    res.error = "first file: " + err;
    return res;
  }
  if (!parse_campaign_doc(b, &db, &err)) {
    res.error = "second file: " + err;
    return res;
  }

  std::ostringstream out;
  out << "ftdiag campaign diff (threshold \xC2\xB1";
  put_us(out, threshold_pct);
  out << "% on P(complete) points and mean_slowdown)\n";
  std::size_t compared = 0;
  for (const CampaignBucket& ba : da.buckets) {
    const CampaignBucket* bb = nullptr;
    for (const CampaignBucket& cand : db.buckets)
      if (cand.r == ba.r) {
        bb = &cand;
        break;
      }
    if (bb == nullptr) continue;  // bucket dropped between campaigns
    ++compared;
    BucketDelta d;
    d.r = ba.r;
    d.prob_before = ba.completion_probability;
    d.prob_after = bb->completion_probability;
    d.prob_delta_pts =
        100.0 * (bb->completion_probability - ba.completion_probability);
    d.slowdown_before = ba.mean_slowdown;
    d.slowdown_after = bb->mean_slowdown;
    d.slowdown_delta_pct =
        ba.mean_slowdown > 0.0
            ? 100.0 * (bb->mean_slowdown - ba.mean_slowdown) /
                  ba.mean_slowdown
            : (bb->mean_slowdown != 0.0 ? 100.0 : 0.0);
    d.regression = std::fabs(d.prob_delta_pts) > threshold_pct ||
                   std::fabs(d.slowdown_delta_pct) > threshold_pct;
    if (d.regression || d.prob_delta_pts != 0.0 ||
        d.slowdown_delta_pct != 0.0) {
      char line[200];
      std::snprintf(line, sizeof line,
                    "  r=%d: P(complete) %.3f -> %.3f (%+.1f pts), "
                    "mean_slowdown %.3f -> %.3f (%+.1f%%)%s\n",
                    d.r, d.prob_before, d.prob_after, d.prob_delta_pts,
                    d.slowdown_before, d.slowdown_after,
                    d.slowdown_delta_pct,
                    d.regression ? " REGRESSION" : "");
      out << line;
    }
    if (d.regression) ++res.regressions;
    res.deltas.push_back(d);
  }
  out << "summary: " << res.regressions << " regression(s) beyond \xC2\xB1";
  put_us(out, threshold_pct);
  out << "% across " << compared << " compared bucket(s)\n";
  res.ok = true;
  res.text = out.str();
  return res;
}

// ---------------------------------------------------------------------------
// history

namespace {

/// Median of an unsorted sample set: sorted copy, average of the two
/// middles when even. Deterministic (no interpolation beyond the
/// midpoint average) and robust to a single outlier run.
double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t mid = v.size() / 2;
  if (v.size() % 2 == 1) return v[mid];
  return 0.5 * (v[mid - 1] + v[mid]);
}

/// Eight-step block sparkline (U+2581..U+2588) of `v` scaled min..max;
/// a flat series renders as the middle block.
std::string sparkline(const std::vector<double>& v) {
  double lo = v.empty() ? 0.0 : v[0];
  double hi = lo;
  for (const double x : v) {
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  std::string out;
  for (const double x : v) {
    int level = 3;  // flat series: middle block
    if (hi > lo) {
      level = static_cast<int>(8.0 * (x - lo) / (hi - lo));
      level = std::min(level, 7);
    }
    out += "\xE2\x96";
    out += static_cast<char>(0x81 + level);
  }
  return out;
}

}  // namespace

HistoryResult history_trends(const std::string& jsonl,
                             const std::string& metric, std::size_t last_k,
                             double threshold_pct) {
  HistoryResult res;
  res.metric = metric;
  res.last_k = last_k;
  res.threshold_pct = threshold_pct;
  if (metric != "makespan" && metric != "wall_ns" && metric != "comparisons") {
    res.error = "unknown history metric \"" + metric +
                "\" (makespan, wall_ns, comparisons)";
    return res;
  }
  if (last_k == 0) {
    res.error = "--last must be at least 1";
    return res;
  }

  // One sample group per (scenario, mode, build), in first-appearance
  // order: smoke vs full runs (different problem sizes) and release vs
  // debug builds (different wall clocks) must never share a trend line.
  struct Group {
    std::string scenario, mode, build;
    std::vector<double> samples;  ///< file order == time order
  };
  std::vector<Group> groups;
  std::map<std::string, std::size_t> index;

  std::size_t begin = 0;
  while (begin < jsonl.size()) {
    std::size_t nl = jsonl.find('\n', begin);
    if (nl == std::string::npos) nl = jsonl.size();
    const std::string line = jsonl.substr(begin, nl - begin);
    begin = nl + 1;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

    // A well-formed history line is one balanced object holding a
    // balanced scenarios array; anything else (a crashed bench run, a
    // partial append, editor damage) is skipped and counted, never
    // fatal — history files are append-only and must survive one bad
    // writer.
    const std::size_t open = line.find('{');
    const std::size_t close =
        open == std::string::npos ? std::string::npos
                                  : match_delim(line, open, '{', '}');
    const std::size_t arr_at = line.find("\"scenarios\": [");
    const std::size_t arr = arr_at == std::string::npos
                                ? std::string::npos
                                : line.find('[', arr_at);
    const std::size_t arr_end =
        arr == std::string::npos ? std::string::npos
                                 : match_delim(line, arr, '[', ']');
    if (close == std::string::npos || arr_end == std::string::npos) {
      ++res.skipped_lines;
      continue;
    }
    const std::string mode = string_field(line, "mode");
    const std::string build = string_field(line, "build");
    bool any = false;
    std::size_t pos = arr;
    while (true) {
      pos = line.find('{', pos);
      if (pos == std::string::npos || pos >= arr_end) break;
      const std::size_t end = match_delim(line, pos, '{', '}');
      if (end == std::string::npos || end > arr_end) break;
      const std::string obj = line.substr(pos, end - pos);
      pos = end;
      const std::string name = string_field(obj, "name");
      double value = 0.0;
      if (name.empty() || !num_field(obj, metric.c_str(), &value)) continue;
      const std::string key = name + "\x1f" + mode + "\x1f" + build;
      const auto it = index.find(key);
      std::size_t gi;
      if (it == index.end()) {
        gi = groups.size();
        index.emplace(key, gi);
        groups.push_back({name, mode, build, {}});
      } else {
        gi = it->second;
      }
      groups[gi].samples.push_back(value);
      any = true;
    }
    if (any)
      ++res.lines;
    else
      ++res.skipped_lines;  // balanced JSON but no usable sample
  }
  if (res.lines == 0) {
    res.error = "no well-formed history lines in file";
    return res;
  }

  std::ostringstream out;
  out << "ftdiag history (" << metric << ", last-" << last_k
      << " median vs baseline median, threshold \xC2\xB1";
  put_us(out, threshold_pct);
  out << "%)\n";
  if (res.skipped_lines > 0)
    out << "  warning: skipped " << res.skipped_lines
        << " corrupt history line(s)\n";

  for (const Group& g : groups) {
    const std::size_t n = g.samples.size();
    if (n < 2) {
      ++res.short_groups;  // one sample: nothing to trend against
      continue;
    }
    // Clamp the window so at least one sample remains as baseline.
    const std::size_t k = std::min(last_k, n - 1);
    HistoryTrend t;
    t.scenario = g.scenario;
    t.mode = g.mode;
    t.build = g.build;
    t.entries = n;
    t.baseline = median({g.samples.begin(),
                         g.samples.begin() + static_cast<std::ptrdiff_t>(
                                                 n - k)});
    t.recent = median({g.samples.end() - static_cast<std::ptrdiff_t>(k),
                       g.samples.end()});
    t.drift_pct = t.baseline != 0.0
                      ? 100.0 * (t.recent - t.baseline) / t.baseline
                      : (t.recent != 0.0 ? 100.0 : 0.0);
    t.regression = std::fabs(t.drift_pct) > threshold_pct;
    t.sparkline = sparkline(g.samples);
    out << "  " << t.scenario << " [" << t.mode << "/" << t.build
        << "] n=" << n << " baseline ";
    put_us(out, t.baseline);
    out << " recent ";
    put_us(out, t.recent);
    out << " (";
    put_pct(out, t.drift_pct);
    out << ") " << t.sparkline;
    if (t.regression) out << " REGRESSION";
    out << "\n";
    if (t.regression) ++res.regressions;
    res.trends.push_back(std::move(t));
  }
  out << "summary: " << res.regressions << " regression(s) beyond \xC2\xB1";
  put_us(out, threshold_pct);
  out << "% across " << res.trends.size() << " trend(s)";
  if (res.short_groups > 0)
    out << "; " << res.short_groups << " group(s) too short to trend";
  out << "\n";
  res.ok = true;
  res.text = out.str();
  return res;
}

// ---------------------------------------------------------------------------
// lineage

namespace {

/// `"key": true|false` field inside `obj`; `fallback` when absent.
bool bool_or(const std::string& obj, const char* key, bool fallback) {
  const std::string needle = std::string("\"") + key + "\": ";
  const std::size_t at = obj.find(needle);
  if (at == std::string::npos) return fallback;
  return obj.compare(at + needle.size(), 4, "true") == 0;
}

/// One row of the metrics export's per-key lineage detail.
struct LineageKeyRow {
  long id = -1;
  double value = 0.0;
  long origin = 0;
  long holder = 0;
  bool dummy = false;
  bool retired = false;
  bool lost = false;
  bool salvaged = false;
  long witness = -1;
  long witness_step = -1;
  double moves = 0.0;
  double hops = 0.0;
  std::string trail;
};

void read_key_row(const std::string& obj, LineageKeyRow* row) {
  row->id = static_cast<long>(num_or(obj, "id", -1.0));
  row->value = num_or(obj, "value", 0.0);
  row->origin = static_cast<long>(num_or(obj, "origin", 0.0));
  row->holder = static_cast<long>(num_or(obj, "holder", 0.0));
  row->dummy = bool_or(obj, "dummy", false);
  row->retired = bool_or(obj, "retired", false);
  row->lost = bool_or(obj, "lost", false);
  row->salvaged = bool_or(obj, "salvaged", false);
  row->witness = static_cast<long>(num_or(obj, "witness", -1.0));
  row->witness_step = static_cast<long>(num_or(obj, "witness_step", -1.0));
  row->moves = num_or(obj, "moves", 0.0);
  row->hops = num_or(obj, "hops", 0.0);
  row->trail = string_field(obj, "trail");
}

/// Decode one `<code>,node,peer,step,phase` trail event (the codec of
/// sim::lineage_event_code + sim::write_metrics_json) into a prose line.
std::string decode_trail_event(const std::string& ev) {
  std::vector<std::string> f;
  std::size_t begin = 0;
  while (f.size() < 5) {
    const std::size_t comma = ev.find(',', begin);
    if (comma == std::string::npos) {
      f.push_back(ev.substr(begin));
      break;
    }
    f.push_back(ev.substr(begin, comma - begin));
    begin = comma + 1;
  }
  if (f.size() < 5 || f[0].size() != 1) return "malformed event \"" + ev + "\"";
  const std::string& node = f[1];
  const std::string& peer = f[2];
  const std::string& step = f[3];
  const std::string& phase = f[4];
  switch (f[0][0]) {
    case 'A': return "assigned to node " + node + " [" + phase + "]";
    case 'M':
      return "moved to node " + node + " from node " + peer + " at tag " +
             step + " [" + phase + "]";
    case 'S':
      return "salvaged to node " + node + " (witness node " + peer +
             ", step " + step + ") [" + phase + "]";
    case 'R':
      return "re-scattered to node " + node + " from node " + peer + " [" +
             phase + "]";
    case 'T': return "retired at node " + node + " [" + phase + "]";
    case 'L': return "LOST at node " + node + " [" + phase + "]";
    default: return "unknown event \"" + ev + "\"";
  }
}

}  // namespace

LineageCliResult lineage_report(const std::string& json, long key,
                                std::size_t top_n, bool audit_only) {
  LineageCliResult res;
  if (!check_schema_ceiling(json, "metrics JSON", kMetricsSchemaMax,
                            &res.error))
    return res;
  const std::size_t at = json.find("\"lineage\": {");
  if (at == std::string::npos) {
    res.error =
        "metrics JSON without a \"lineage\" block (schema v6 required)";
    return res;
  }
  const std::size_t block_start = json.find('{', at);
  const std::size_t block_end = match_delim(json, block_start, '{', '}');
  if (block_end == std::string::npos) {
    res.error = "unterminated \"lineage\" block";
    return res;
  }
  const std::string block =
      json.substr(block_start, block_end - block_start);
  if (!bool_or(block, "enabled", false)) {
    res.error = "run recorded no lineage (record_lineage off)";
    return res;
  }

  // Rollups. These keys all precede the audit/keys sub-objects in the
  // writer's fixed order, so first-occurrence scanning is unambiguous.
  const auto assigned = static_cast<long>(num_or(block, "assigned", 0.0));
  const auto dummies = static_cast<long>(num_or(block, "dummies", 0.0));
  const auto dropped =
      static_cast<long>(num_or(block, "dropped_events", 0.0));
  const auto mismatches =
      static_cast<long>(num_or(block, "resolve_mismatches", 0.0));
  const auto untracked =
      static_cast<long>(num_or(block, "untracked_total", 0.0));

  // Audit block with the named violations.
  struct LostRow {
    long id = 0;
    double value = 0.0;
    long last_holder = 0;
    std::string phase;
  };
  struct DupRow {
    double value = 0.0;
    long extra = 0;
  };
  std::vector<LostRow> lost_rows;
  std::vector<DupRow> dup_rows;
  long salvaged = 0;
  long witnessed = 0;
  {
    const std::size_t aud = block.find("\"audit\": {");
    if (aud == std::string::npos) {
      res.error = "lineage block without an \"audit\" object";
      return res;
    }
    const std::size_t astart = block.find('{', aud);
    const std::size_t aend = match_delim(block, astart, '{', '}');
    if (aend == std::string::npos) {
      res.error = "unterminated \"audit\" object";
      return res;
    }
    const std::string audit = block.substr(astart, aend - astart);
    res.audit_checked = bool_or(audit, "checked", false);
    res.audit_ok = bool_or(audit, "ok", false);
    salvaged = static_cast<long>(num_or(audit, "salvaged", 0.0));
    witnessed = static_cast<long>(num_or(audit, "witnessed_salvaged", 0.0));
    const auto read_array = [&](const char* name, auto fn) {
      const std::size_t arr_at = audit.find(std::string("\"") + name +
                                            "\": [");
      if (arr_at == std::string::npos) return;
      std::size_t p = audit.find('[', arr_at);
      const std::size_t pstop = match_delim(audit, p, '[', ']');
      while (pstop != std::string::npos) {
        p = audit.find('{', p);
        if (p == std::string::npos || p >= pstop) break;
        const std::size_t end = match_delim(audit, p, '{', '}');
        if (end == std::string::npos) break;
        fn(audit.substr(p, end - p));
        p = end;
      }
    };
    read_array("lost", [&](const std::string& obj) {
      lost_rows.push_back({static_cast<long>(num_or(obj, "id", 0.0)),
                           num_or(obj, "value", 0.0),
                           static_cast<long>(num_or(obj, "last_holder", 0.0)),
                           string_field(obj, "phase")});
    });
    read_array("duplicated", [&](const std::string& obj) {
      dup_rows.push_back({num_or(obj, "value", 0.0),
                          static_cast<long>(num_or(obj, "extra", 0.0))});
    });
  }
  res.lost = lost_rows.size();
  res.duplicated = dup_rows.size();

  // Per-key detail (needed for --key and --top). `"keys": [` is distinct
  // from the `keys_total`/`keys_emitted` scalars before it.
  std::vector<LineageKeyRow> rows;
  {
    const std::size_t karr = block.find("\"keys\": [");
    if (karr != std::string::npos) {
      std::size_t p = block.find('[', karr);
      const std::size_t pstop = match_delim(block, p, '[', ']');
      while (pstop != std::string::npos) {
        p = block.find('{', p);
        if (p == std::string::npos || p >= pstop) break;
        const std::size_t end = match_delim(block, p, '{', '}');
        if (end == std::string::npos) break;
        LineageKeyRow row;
        read_key_row(block.substr(p, end - p), &row);
        if (row.id >= 0) rows.push_back(std::move(row));
        p = end;
      }
    }
  }

  std::ostringstream out;
  const auto put_verdict = [&] {
    if (!res.audit_checked)
      out << "  audit: NOT RUN (gather did not complete)\n";
    else if (res.audit_ok)
      out << "  audit: OK — every input key in the output exactly once\n";
    else
      out << "  audit: VIOLATED — " << res.lost << " lost, "
          << res.duplicated << " duplicated\n";
    for (const LostRow& r : lost_rows) {
      out << "    LOST id " << r.id << " value ";
      put_us(out, r.value);
      out << " last holder node " << r.last_holder << " [" << r.phase
          << "]\n";
    }
    for (const DupRow& r : dup_rows) {
      out << "    DUPLICATED value ";
      put_us(out, r.value);
      out << " x" << (r.extra + 1) << " (" << r.extra << " extra)\n";
    }
  };

  if (key >= 0) {
    const LineageKeyRow* row = nullptr;
    for (const LineageKeyRow& r : rows)
      if (r.id == key) {
        row = &r;
        break;
      }
    if (row == nullptr) {
      res.error = "no key with id " + std::to_string(key) +
                  " in the per-key detail (" + std::to_string(rows.size()) +
                  " emitted; the export caps detail at " +
                  std::to_string(static_cast<long>(
                      num_or(block, "keys_emitted", 0.0))) +
                  " keys)";
      return res;
    }
    out << "ftdiag lineage: key id " << row->id << " value ";
    put_us(out, row->value);
    out << "\n  origin node " << row->origin << " -> final holder node "
        << row->holder << "; " << static_cast<long>(row->moves)
        << " custody move(s), " << static_cast<long>(row->hops)
        << " link hop(s)\n";
    if (row->dummy)
      out << "  dummy padding key" << (row->retired ? " (retired)" : "")
          << "\n";
    if (row->lost) out << "  LOST in custody\n";
    if (row->salvaged) out << "  salvaged off a dead node\n";
    if (row->witness >= 0)
      out << "  freshest witness: node " << row->witness << " at step "
          << row->witness_step << "\n";
    out << "  custody trail:\n";
    std::size_t begin = 0;
    const std::string& trail = row->trail;
    while (begin < trail.size()) {
      std::size_t semi = trail.find(';', begin);
      if (semi == std::string::npos) semi = trail.size();
      out << "    " << decode_trail_event(trail.substr(begin, semi - begin))
          << "\n";
      begin = semi + 1;
    }
    res.ok = true;
    res.text = out.str();
    return res;
  }

  if (top_n > 0) {
    std::stable_sort(rows.begin(), rows.end(),
                     [](const LineageKeyRow& a, const LineageKeyRow& b) {
                       return a.hops > b.hops;
                     });
    out << "ftdiag lineage: top " << std::min(top_n, rows.size())
        << " traveler(s) of " << rows.size() << " emitted key(s)\n";
    for (std::size_t i = 0; i < rows.size() && i < top_n; ++i) {
      const LineageKeyRow& r = rows[i];
      out << "  id " << r.id << " value ";
      put_us(out, r.value);
      out << ": " << static_cast<long>(r.hops) << " hop(s), "
          << static_cast<long>(r.moves) << " move(s), node " << r.origin
          << " -> node " << r.holder << (r.salvaged ? " [salvaged]" : "")
          << "\n";
    }
    res.ok = true;
    res.text = out.str();
    return res;
  }

  if (audit_only) {
    out << "ftdiag lineage audit\n";
    put_verdict();
    res.ok = true;
    res.text = out.str();
    return res;
  }

  out << "ftdiag lineage: " << assigned << " id(s) assigned (" << dummies
      << " dummy), " << rows.size() << " in per-key detail\n";
  put_verdict();
  out << "  salvage: " << salvaged << " key(s) salvaged, " << witnessed
      << " through a recorded witness\n";
  out << "  hops without a custodian id (control/witness/fan-out words): "
      << untracked << "\n";
  if (mismatches != 0)
    out << "  warning: " << mismatches << " resolve mismatch(es)\n";
  if (dropped != 0)
    out << "  warning: " << dropped
        << " chain event(s) dropped past the per-key cap\n";
  std::stable_sort(rows.begin(), rows.end(),
                   [](const LineageKeyRow& a, const LineageKeyRow& b) {
                     return a.hops > b.hops;
                   });
  const std::size_t shown = std::min<std::size_t>(5, rows.size());
  if (shown > 0) out << "  top travelers:\n";
  for (std::size_t i = 0; i < shown; ++i) {
    const LineageKeyRow& r = rows[i];
    out << "    id " << r.id << " value ";
    put_us(out, r.value);
    out << ": " << static_cast<long>(r.hops) << " hop(s), "
        << static_cast<long>(r.moves) << " move(s)\n";
  }
  res.ok = true;
  res.text = out.str();
  return res;
}

// ---------------------------------------------------------------------------
// stuck

StuckResult stuck_report(const std::string& json) {
  StuckResult res;
  if (json.find("\"watchdog_dump\": true") == std::string::npos) {
    res.error =
        "not a watchdog dump (missing \"watchdog_dump\" marker; expected "
        "sim::write_watchdog_dump output)";
    return res;
  }
  if (!check_schema_ceiling(json, "watchdog JSON", kWatchdogSchemaMax,
                            &res.error))
    return res;
  res.origin = string_field(json, "origin");
  if (res.origin.empty()) res.origin = "machine";
  const std::string policy = string_field(json, "policy");
  res.trips = static_cast<std::uint64_t>(num_or(json, "trips", 0.0));
  res.near_misses =
      static_cast<std::uint64_t>(num_or(json, "near_misses", 0.0));
  const std::uint64_t deadline =
      static_cast<std::uint64_t>(num_or(json, "deadline_ms", 0.0));
  const std::uint64_t effective =
      static_cast<std::uint64_t>(num_or(json, "effective_deadline_ms", 0.0));
  const std::uint64_t interval =
      static_cast<std::uint64_t>(num_or(json, "interval_ms", 0.0));
  const std::uint64_t stall =
      static_cast<std::uint64_t>(num_or(json, "stall_ms", 0.0));

  const std::size_t hb = json.find("\"heartbeats\": [");
  if (hb == std::string::npos) {
    res.error = "watchdog dump without a \"heartbeats\" array";
    return res;
  }
  const std::size_t hb_open = json.find('[', hb);
  const std::size_t hb_end = match_delim(json, hb_open, '[', ']');
  if (hb_end == std::string::npos) {
    res.error = "unterminated \"heartbeats\" array";
    return res;
  }
  std::size_t cursor = hb_open + 1;
  while (cursor < hb_end) {
    const std::size_t open = json.find('{', cursor);
    if (open == std::string::npos || open >= hb_end) break;
    const std::size_t close = match_delim(json, open, '{', '}');
    if (close == std::string::npos) {
      res.error = "unterminated heartbeat row";
      return res;
    }
    const std::string row = json.substr(open, close - open);
    StuckSlot slot;
    slot.slot = string_field(row, "slot");
    slot.beats = static_cast<std::uint64_t>(num_or(row, "beats", 0.0));
    slot.age_ms = static_cast<std::uint64_t>(num_or(row, "age_ms", 0.0));
    slot.activity = string_field(row, "activity");
    slot.terminal = row.find("\"terminal\": true") != std::string::npos;
    res.slots.push_back(std::move(slot));
    cursor = close;
  }
  // Culprit-first ordering: live slots by silence, retired slots last.
  std::stable_sort(res.slots.begin(), res.slots.end(),
                   [](const StuckSlot& a, const StuckSlot& b) {
                     if (a.terminal != b.terminal) return !a.terminal;
                     return a.age_ms > b.age_ms;
                   });

  std::ostringstream out;
  out << "ftdiag stuck: " << res.origin << " watchdog dump ("
      << (policy.empty() ? "?" : policy) << " policy)\n";
  out << "  trips: " << res.trips << ", near misses: " << res.near_misses
      << "\n";
  out << "  silent for " << stall << " ms (deadline " << deadline
      << " ms, effective " << effective << " ms, polled every " << interval
      << " ms)\n";

  // The replayed Diagnosis, when the dump carries one: the root cause in
  // protocol terms, ahead of the raw heartbeat evidence.
  const std::size_t dg = json.find("\"diagnosis\": {");
  if (dg != std::string::npos) {
    const std::size_t open = json.find('{', dg);
    const std::size_t end = match_delim(json, open, '{', '}');
    if (end != std::string::npos) {
      const std::string block = json.substr(open, end - open);
      const std::string summary = string_field(block, "summary");
      if (!summary.empty()) out << "  root cause: " << summary << "\n";
      const std::size_t st = block.find("\"stalled\": [");
      if (st != std::string::npos) {
        const std::size_t sopen = block.find('[', st);
        const std::size_t send = block.find(']', sopen);
        if (send != std::string::npos && send > sopen + 1)
          out << "  stalled nodes: [" << block.substr(sopen + 1, send - sopen - 1)
              << "] in phase " << string_field(block, "root_phase") << "\n";
      }
    }
  }

  if (res.slots.empty()) {
    out << "  heartbeats: none recorded\n";
  } else {
    out << "  heartbeats (most silent first):\n";
    const StuckSlot* culprit = nullptr;
    for (const StuckSlot& s : res.slots) {
      out << "    " << s.slot << ": " << s.beats << " beat(s), silent "
          << s.age_ms << " ms, "
          << (s.terminal ? std::string("terminal")
                         : "activity " + s.activity)
          << "\n";
      if (culprit == nullptr && !s.terminal) culprit = &s;
    }
    if (culprit != nullptr)
      out << "  most silent: " << culprit->slot << " (" << culprit->age_ms
          << " ms without a heartbeat, activity " << culprit->activity
          << ")\n";
    else
      out << "  most silent: none (every slot retired in order)\n";
  }

  const std::size_t hp = json.find("\"host_profile\": {");
  if (hp != std::string::npos) {
    const std::size_t open = json.find('{', hp);
    const std::size_t end = match_delim(json, open, '{', '}');
    if (end != std::string::npos) {
      const std::string block = json.substr(open, end - open);
      out << "  host: " << static_cast<long>(num_or(block, "shards", 0.0))
          << " shard(s), "
          << static_cast<long>(num_or(block, "tasks_resumed", 0.0))
          << " task(s) resumed, "
          << static_cast<long>(num_or(block, "quiescence_checks", 0.0))
          << " quiescence check(s)\n";
    }
  }

  out << "  verdict: "
      << (res.trips > 0
              ? "STUCK (watchdog aborted the run)"
              : res.near_misses > 0
                    ? "near miss only (record policy, run continued)"
                    : "no breach recorded")
      << "\n";
  res.ok = true;
  res.text = out.str();
  return res;
}

// ---------------------------------------------------------------------------
// CLI

namespace {

bool slurp(const std::string& path, std::string* out, std::string* err) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *err = "cannot open " + path;
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

int usage(std::ostream& err) {
  err << "usage: ftdiag diff <a.json> <b.json> [--threshold PCT]\n"
         "       ftdiag explain <trace.json>\n"
         "       ftdiag hotspots <file.json> [--top K]\n"
         "       ftdiag hotspots <a.json> <b.json> [--threshold PCT]\n"
         "       ftdiag campaign <report.json>\n"
         "       ftdiag campaign <a.json> <b.json> [--threshold PCT]\n"
         "       ftdiag history <history.jsonl> "
         "[--metric makespan|wall_ns|comparisons]\n"
         "                      [--last K] [--threshold PCT]\n"
         "       ftdiag lineage <metrics.json> [--key ID | --top N | "
         "--audit]\n"
         "       ftdiag stuck <dump.json>\n"
         "       ftdiag --version\n"
         "supported schemas:";
  for (const util::SchemaEntry& e : util::kSchemaTable)
    err << " " << e.format << " JSON " << (e.exact ? "v" : "up to v")
        << e.version << ",";
  err << "\n                   bench history JSONL\n"
         "exit codes: 0 clean, 1 regression beyond threshold "
         "(lineage: audit violated,\n"
         "            stuck: the dump records an abort trip), "
         "2 usage/parse error\n";
  return 2;
}

}  // namespace

int run_cli(int argc, const char* const* argv, std::ostream& out,
            std::ostream& err) {
  if (argc < 2) return usage(err);
  const std::string cmd = argv[1];

  if (cmd == "--version" || cmd == "version") {
    out << "ftdiag schemas:\n";
    for (const util::SchemaEntry& e : util::kSchemaTable)
      out << "  " << e.format << " JSON: "
          << (e.exact ? "exactly v" : "up to v") << e.version << "\n";
    return 0;
  }

  if (cmd == "explain") {
    if (argc != 3) return usage(err);
    std::string text;
    std::string why;
    if (!slurp(argv[2], &text, &why)) {
      err << "ftdiag explain: " << why << "\n";
      return 2;
    }
    const ExplainResult res = explain_trace_json(text);
    if (!res.ok) {
      err << "ftdiag explain: " << res.error << "\n";
      return 2;
    }
    out << res.text;
    return 0;
  }

  if (cmd == "diff") {
    if (argc != 4 && argc != 6) return usage(err);
    double threshold = 20.0;
    if (argc == 6) {
      if (std::string(argv[4]) != "--threshold") return usage(err);
      char* end = nullptr;
      threshold = std::strtod(argv[5], &end);
      if (end == argv[5] || threshold < 0.0) return usage(err);
    }
    std::string ta;
    std::string tb;
    std::string why;
    if (!slurp(argv[2], &ta, &why) || !slurp(argv[3], &tb, &why)) {
      err << "ftdiag diff: " << why << "\n";
      return 2;
    }
    const DiffResult res = diff_json(ta, tb, threshold);
    if (!res.ok) {
      err << "ftdiag diff: " << res.error << "\n";
      return 2;
    }
    out << res.text;
    return res.regressions > 0 ? 1 : 0;
  }

  if (cmd == "hotspots") {
    // One file = report mode (optionally --top K); two files = diff mode
    // (optionally --threshold PCT).
    std::string why;
    if (argc == 3 || (argc == 5 && std::string(argv[3]) == "--top")) {
      std::size_t top_k = 0;
      if (argc == 5) {
        char* end = nullptr;
        const long k = std::strtol(argv[4], &end, 10);
        if (end == argv[4] || k <= 0) return usage(err);
        top_k = static_cast<std::size_t>(k);
      }
      std::string text;
      if (!slurp(argv[2], &text, &why)) {
        err << "ftdiag hotspots: " << why << "\n";
        return 2;
      }
      const HotspotsResult res = hotspots_report(text, top_k);
      if (!res.ok) {
        err << "ftdiag hotspots: " << res.error << "\n";
        return 2;
      }
      out << res.text;
      return 0;
    }
    if (argc == 4 || (argc == 6 && std::string(argv[4]) == "--threshold")) {
      double threshold = 20.0;
      if (argc == 6) {
        char* end = nullptr;
        threshold = std::strtod(argv[5], &end);
        if (end == argv[5] || threshold < 0.0) return usage(err);
      }
      std::string ta;
      std::string tb;
      if (!slurp(argv[2], &ta, &why) || !slurp(argv[3], &tb, &why)) {
        err << "ftdiag hotspots: " << why << "\n";
        return 2;
      }
      const HotspotsResult res = hotspots_diff(ta, tb, threshold);
      if (!res.ok) {
        err << "ftdiag hotspots: " << res.error << "\n";
        return 2;
      }
      out << res.text;
      return res.regressions > 0 ? 1 : 0;
    }
    return usage(err);
  }

  if (cmd == "campaign") {
    // One file = summary report; two files = reliability-curve diff
    // (optionally --threshold PCT; default 0 — campaigns are
    // deterministic, so same-spec reports must match exactly).
    std::string why;
    if (argc == 3) {
      std::string text;
      if (!slurp(argv[2], &text, &why)) {
        err << "ftdiag campaign: " << why << "\n";
        return 2;
      }
      const CampaignCliResult res = campaign_report(text);
      if (!res.ok) {
        err << "ftdiag campaign: " << res.error << "\n";
        return 2;
      }
      out << res.text;
      return 0;
    }
    if (argc == 4 || (argc == 6 && std::string(argv[4]) == "--threshold")) {
      double threshold = 0.0;
      if (argc == 6) {
        char* end = nullptr;
        threshold = std::strtod(argv[5], &end);
        if (end == argv[5] || threshold < 0.0) return usage(err);
      }
      std::string ta;
      std::string tb;
      if (!slurp(argv[2], &ta, &why) || !slurp(argv[3], &tb, &why)) {
        err << "ftdiag campaign: " << why << "\n";
        return 2;
      }
      const CampaignCliResult res = campaign_diff(ta, tb, threshold);
      if (!res.ok) {
        err << "ftdiag campaign: " << res.error << "\n";
        return 2;
      }
      out << res.text;
      return res.regressions > 0 ? 1 : 0;
    }
    return usage(err);
  }

  if (cmd == "history") {
    if (argc < 3) return usage(err);
    std::string metric = "makespan";
    std::size_t last_k = 3;
    double threshold = 20.0;
    for (int i = 3; i < argc; i += 2) {
      if (i + 1 >= argc) return usage(err);
      const std::string flag = argv[i];
      const char* val = argv[i + 1];
      if (flag == "--metric") {
        metric = val;
      } else if (flag == "--last") {
        char* end = nullptr;
        const long k = std::strtol(val, &end, 10);
        if (end == val || k <= 0) return usage(err);
        last_k = static_cast<std::size_t>(k);
      } else if (flag == "--threshold") {
        char* end = nullptr;
        threshold = std::strtod(val, &end);
        if (end == val || threshold < 0.0) return usage(err);
      } else {
        return usage(err);
      }
    }
    std::string text;
    std::string why;
    if (!slurp(argv[2], &text, &why)) {
      err << "ftdiag history: " << why << "\n";
      return 2;
    }
    const HistoryResult res = history_trends(text, metric, last_k, threshold);
    if (!res.ok) {
      err << "ftdiag history: " << res.error << "\n";
      return 2;
    }
    out << res.text;
    return res.regressions > 0 ? 1 : 0;
  }

  if (cmd == "lineage") {
    if (argc < 3) return usage(err);
    long key = -1;
    std::size_t top_n = 0;
    bool audit_only = false;
    int i = 3;
    while (i < argc) {
      const std::string flag = argv[i];
      if (flag == "--audit") {
        audit_only = true;
        i += 1;
      } else if (flag == "--key" && i + 1 < argc) {
        char* end = nullptr;
        key = std::strtol(argv[i + 1], &end, 10);
        if (end == argv[i + 1] || key < 0) return usage(err);
        i += 2;
      } else if (flag == "--top" && i + 1 < argc) {
        char* end = nullptr;
        const long n = std::strtol(argv[i + 1], &end, 10);
        if (end == argv[i + 1] || n <= 0) return usage(err);
        top_n = static_cast<std::size_t>(n);
        i += 2;
      } else {
        return usage(err);
      }
    }
    // The three modes are exclusive: each picks its own rendering.
    if ((key >= 0 ? 1 : 0) + (top_n > 0 ? 1 : 0) + (audit_only ? 1 : 0) > 1)
      return usage(err);
    std::string text;
    std::string why;
    if (!slurp(argv[2], &text, &why)) {
      err << "ftdiag lineage: " << why << "\n";
      return 2;
    }
    const LineageCliResult res =
        lineage_report(text, key, top_n, audit_only);
    if (!res.ok) {
      err << "ftdiag lineage: " << res.error << "\n";
      return 2;
    }
    out << res.text;
    return (res.audit_checked && !res.audit_ok) ? 1 : 0;
  }

  if (cmd == "stuck") {
    if (argc != 3) return usage(err);
    std::string text;
    std::string why;
    if (!slurp(argv[2], &text, &why)) {
      err << "ftdiag stuck: " << why << "\n";
      return 2;
    }
    const StuckResult res = stuck_report(text);
    if (!res.ok) {
      err << "ftdiag stuck: " << res.error << "\n";
      return 2;
    }
    out << res.text;
    return res.trips > 0 ? 1 : 0;
  }

  return usage(err);
}

}  // namespace ftsort::tools
