#include "tools/ftdiag.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <string>

#include "sim/phase.hpp"

namespace ftsort::tools {

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON scanning, in lockstep with the repo's hand-rolled writers
// (sim::write_chrome_trace, sim::write_metrics_json, bench_harness
// write_json). Not a general parser: it only needs the exact shapes those
// emit, plus whitespace tolerance.

/// Index one past the matching close for the `open` at `start`; npos on
/// imbalance. String-aware (quoted text may contain braces).
std::size_t match_delim(const std::string& text, std::size_t start,
                        char open, char close) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = start; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\')
        ++i;
      else if (c == '"')
        in_string = false;
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == open) {
      ++depth;
    } else if (c == close) {
      if (--depth == 0) return i + 1;
    }
  }
  return std::string::npos;
}

/// Value of a `"key": "string"` field inside `obj`, or empty.
std::string string_field(const std::string& obj, const char* key) {
  const std::string needle = std::string("\"") + key + "\": \"";
  const std::size_t at = obj.find(needle);
  if (at == std::string::npos) return {};
  const std::size_t begin = at + needle.size();
  const std::size_t end = obj.find('"', begin);
  if (end == std::string::npos) return {};
  return obj.substr(begin, end - begin);
}

/// Numeric `"key": value` field inside `obj`; false when absent.
bool num_field(const std::string& obj, const char* key, double* out) {
  const std::string needle = std::string("\"") + key + "\": ";
  const std::size_t at = obj.find(needle);
  if (at == std::string::npos) return false;
  const char* begin = obj.c_str() + at + needle.size();
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  if (end == begin) return false;
  *out = v;
  return true;
}

double num_or(const std::string& obj, const char* key, double fallback) {
  double v = fallback;
  num_field(obj, key, &v);
  return v;
}

// ---------------------------------------------------------------------------
// diff: parsed per-run phase samples.

struct PhaseSample {
  double critical_time = 0.0;
  double critical_comm = 0.0;
  double critical_compute = 0.0;
  bool has_split = false;  ///< comm/compute columns present (metrics format)
};

struct RunSample {
  std::string scenario;  ///< empty for the single-run metrics format
  double makespan = 0.0;
  // Ordered map: deterministic iteration -> deterministic report text.
  std::map<std::string, PhaseSample> phases;
};

struct ParsedDoc {
  bool ok = false;
  std::string error;
  bool bench_format = false;  ///< true = bench scenarios, false = metrics
  std::vector<RunSample> runs;
};

/// Parse one `{"phase"|name: {...}}`-style slice object into `out`.
void read_phase_counters(const std::string& obj, PhaseSample* out) {
  out->critical_time = num_or(obj, "critical_time", 0.0);
  double comm = 0.0;
  double compute = 0.0;
  const bool has_comm = num_field(obj, "critical_comm", &comm);
  const bool has_compute = num_field(obj, "critical_compute", &compute);
  out->critical_comm = comm;
  out->critical_compute = compute;
  out->has_split = has_comm && has_compute;
}

/// Metrics format: top-level `"phases": [ {"phase": "name", ...}, ... ]`.
bool parse_metrics_doc(const std::string& text, ParsedDoc* doc,
                       std::string* err) {
  RunSample run;
  run.makespan = num_or(text, "makespan", 0.0);
  const std::size_t at = text.find("\"phases\": [");
  if (at == std::string::npos) {
    *err = "metrics JSON without a \"phases\" array";
    return false;
  }
  std::size_t pos = text.find('[', at);
  const std::size_t stop = match_delim(text, pos, '[', ']');
  if (stop == std::string::npos) {
    *err = "unterminated \"phases\" array";
    return false;
  }
  while (true) {
    pos = text.find('{', pos);
    if (pos == std::string::npos || pos >= stop) break;
    const std::size_t end = match_delim(text, pos, '{', '}');
    if (end == std::string::npos) {
      *err = "unterminated phase object";
      return false;
    }
    const std::string obj = text.substr(pos, end - pos);
    const std::string name = string_field(obj, "phase");
    if (name.empty()) {
      *err = "phase object without a \"phase\" name: " + obj;
      return false;
    }
    read_phase_counters(obj, &run.phases[name]);
    pos = end;
  }
  doc->bench_format = false;
  doc->runs.push_back(std::move(run));
  return true;
}

/// Bench format: `"scenarios": [ {"name": ..., "phases": { ... }}, ... ]`.
bool parse_bench_doc(const std::string& text, ParsedDoc* doc,
                     std::string* err) {
  std::size_t pos = text.find('[', text.find("\"scenarios\""));
  if (pos == std::string::npos) {
    *err = "bench JSON without a \"scenarios\" array";
    return false;
  }
  const std::size_t stop = match_delim(text, pos, '[', ']');
  if (stop == std::string::npos) {
    *err = "unterminated \"scenarios\" array";
    return false;
  }
  while (true) {
    pos = text.find('{', pos);
    if (pos == std::string::npos || pos >= stop) break;
    const std::size_t end = match_delim(text, pos, '{', '}');
    if (end == std::string::npos) {
      *err = "unterminated scenario object";
      return false;
    }
    const std::string obj = text.substr(pos, end - pos);
    RunSample run;
    run.scenario = string_field(obj, "name");
    if (run.scenario.empty()) {
      *err = "scenario without a \"name\"";
      return false;
    }
    run.makespan = num_or(obj, "makespan", 0.0);
    const std::size_t ph = obj.find("\"phases\": {");
    if (ph != std::string::npos) {
      std::size_t p = obj.find('{', ph);
      const std::size_t pstop = match_delim(obj, p, '{', '}');
      if (pstop == std::string::npos) {
        *err = "unterminated \"phases\" object in scenario " + run.scenario;
        return false;
      }
      ++p;  // step inside the phases object
      while (true) {
        // Each entry is `"phase_name": { ... }`.
        const std::size_t q = obj.find('"', p);
        if (q == std::string::npos || q >= pstop - 1) break;
        const std::size_t qe = obj.find('"', q + 1);
        if (qe == std::string::npos || qe >= pstop) break;
        const std::string name = obj.substr(q + 1, qe - q - 1);
        const std::size_t body = obj.find('{', qe);
        if (body == std::string::npos || body >= pstop) break;
        const std::size_t bend = match_delim(obj, body, '{', '}');
        if (bend == std::string::npos) {
          *err = "unterminated phase entry \"" + name + "\"";
          return false;
        }
        read_phase_counters(obj.substr(body, bend - body),
                            &run.phases[name]);
        p = bend;
      }
    }
    doc->runs.push_back(std::move(run));
    pos = end;
  }
  doc->bench_format = true;
  return true;
}

ParsedDoc parse_doc(const std::string& text) {
  ParsedDoc doc;
  std::string err;
  const bool ok = text.find("\"scenarios\"") != std::string::npos
                      ? parse_bench_doc(text, &doc, &err)
                      : parse_metrics_doc(text, &doc, &err);
  doc.ok = ok;
  doc.error = err;
  return doc;
}

void put_pct(std::ostream& os, double pct) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%+.1f%%", pct);
  os << buf;
}

void put_us(std::ostream& os, double us) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", us);
  os << buf;
}

}  // namespace

// ---------------------------------------------------------------------------
// explain

ExplainResult explain_trace_json(const std::string& json) {
  ExplainResult res;
  const std::size_t wrapper = json.find("\"traceEvents\"");
  if (wrapper == std::string::npos) {
    res.error = "not a Chrome trace: missing \"traceEvents\"";
    return res;
  }
  std::size_t pos = json.find('[', wrapper);
  if (pos == std::string::npos) {
    res.error = "missing traceEvents array";
    return res;
  }
  const std::size_t stop = match_delim(json, pos, '[', ']');
  if (stop == std::string::npos) {
    res.error = "unterminated traceEvents array";
    return res;
  }

  sim::DiagnosisInput input;
  while (true) {
    pos = json.find('{', pos);
    if (pos == std::string::npos || pos >= stop) break;
    const std::size_t end = match_delim(json, pos, '{', '}');
    if (end == std::string::npos) {
      res.error = "unterminated event object";
      return res;
    }
    const std::string obj = json.substr(pos, end - pos);
    pos = end;
    const std::string name = string_field(obj, "name");
    if (name != "timeout" && name != "kill") continue;
    double ts = 0.0;
    double tid = 0.0;
    if (!num_field(obj, "ts", &ts) || !num_field(obj, "tid", &tid)) {
      res.error = "fault instant without ts/tid: " + obj;
      return res;
    }
    const sim::Phase phase =
        sim::phase_from_name(string_field(obj, "phase"));
    const auto node = static_cast<cube::NodeId>(tid);
    if (name == "timeout") {
      ++res.timeout_events;
      input.waits.push_back(
          {node, static_cast<cube::NodeId>(num_or(obj, "src", 0.0)),
           static_cast<sim::Tag>(num_or(obj, "tag", 0.0)), ts, phase,
           /*expired=*/true});
    } else {
      ++res.kill_events;
      input.kills.push_back({node, ts, phase});
    }
  }

  const sim::Diagnosis::Kind kind =
      res.timeout_events > 0  ? sim::Diagnosis::Kind::TimeoutBurst
      : res.kill_events > 0   ? sim::Diagnosis::Kind::NodeLoss
                              : sim::Diagnosis::Kind::None;
  res.diagnosis = sim::diagnose(std::move(input), kind);
  res.ok = true;

  std::ostringstream out;
  out << "ftdiag explain: " << res.timeout_events << " timeout(s), "
      << res.kill_events << " kill(s) in trace\n";
  if (res.diagnosis.triggered())
    out << res.diagnosis.to_string() << "\n";
  else
    out << "no failure evidence recorded; nothing to explain\n";
  res.text = out.str();
  return res;
}

// ---------------------------------------------------------------------------
// diff

DiffResult diff_json(const std::string& a, const std::string& b,
                     double threshold_pct) {
  DiffResult res;
  res.threshold_pct = threshold_pct;
  const ParsedDoc da = parse_doc(a);
  if (!da.ok) {
    res.error = "first file: " + da.error;
    return res;
  }
  const ParsedDoc db = parse_doc(b);
  if (!db.ok) {
    res.error = "second file: " + db.error;
    return res;
  }
  if (da.bench_format != db.bench_format) {
    res.error = "format mismatch: one file is a bench export, the other a "
                "metrics export";
    return res;
  }

  std::ostringstream out;
  out << "ftdiag diff (threshold \xC2\xB1";
  put_us(out, threshold_pct);
  out << "% on per-phase critical_time)\n";

  std::size_t compared = 0;
  for (const RunSample& ra : da.runs) {
    const RunSample* rb = nullptr;
    for (const RunSample& cand : db.runs)
      if (cand.scenario == ra.scenario) {
        rb = &cand;
        break;
      }
    if (rb == nullptr) continue;  // scenario dropped between runs
    const std::string where =
        ra.scenario.empty() ? std::string() : ra.scenario + " ";
    if (ra.makespan > 0.0 && rb->makespan > 0.0 &&
        ra.makespan != rb->makespan) {
      out << "  " << where << "makespan ";
      put_us(out, ra.makespan);
      out << " -> ";
      put_us(out, rb->makespan);
      out << " (";
      put_pct(out, 100.0 * (rb->makespan - ra.makespan) / ra.makespan);
      out << ")\n";
    }
    for (const auto& [phase, pa] : ra.phases) {
      const auto it = rb->phases.find(phase);
      if (it == rb->phases.end()) continue;
      const PhaseSample& pb = it->second;
      if (pa.critical_time == 0.0 && pb.critical_time == 0.0) continue;
      ++compared;
      PhaseDelta d;
      d.scenario = ra.scenario;
      d.phase = phase;
      d.before = pa.critical_time;
      d.after = pb.critical_time;
      d.delta_pct = pa.critical_time > 0.0
                        ? 100.0 * (pb.critical_time - pa.critical_time) /
                              pa.critical_time
                        : 100.0;
      d.regression = std::fabs(d.delta_pct) > threshold_pct;
      if (pa.has_split && pb.has_split) {
        const double dcomm = pb.critical_comm - pa.critical_comm;
        const double dcompute = pb.critical_compute - pa.critical_compute;
        d.attribution =
            std::fabs(dcomm) >= std::fabs(dcompute) ? "comm" : "compute";
      }
      if (d.regression || d.delta_pct != 0.0) {
        out << "  " << where << phase << ": critical_time ";
        put_us(out, d.before);
        out << " -> ";
        put_us(out, d.after);
        out << " (";
        put_pct(out, d.delta_pct);
        out << ")";
        if (!d.attribution.empty()) out << " [" << d.attribution << "]";
        if (d.regression) out << " REGRESSION";
        out << "\n";
      }
      if (d.regression) ++res.regressions;
      res.deltas.push_back(std::move(d));
    }
  }
  out << "summary: " << res.regressions << " regression(s) beyond \xC2\xB1";
  put_us(out, threshold_pct);
  out << "% across " << compared << " compared phase(s)\n";
  res.ok = true;
  res.text = out.str();
  return res;
}

// ---------------------------------------------------------------------------
// CLI

namespace {

bool slurp(const std::string& path, std::string* out, std::string* err) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *err = "cannot open " + path;
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

int usage(std::ostream& err) {
  err << "usage: ftdiag diff <a.json> <b.json> [--threshold PCT]\n"
         "       ftdiag explain <trace.json>\n"
         "exit codes: 0 clean, 1 regression beyond threshold, "
         "2 usage/parse error\n";
  return 2;
}

}  // namespace

int run_cli(int argc, const char* const* argv, std::ostream& out,
            std::ostream& err) {
  if (argc < 2) return usage(err);
  const std::string cmd = argv[1];

  if (cmd == "explain") {
    if (argc != 3) return usage(err);
    std::string text;
    std::string why;
    if (!slurp(argv[2], &text, &why)) {
      err << "ftdiag explain: " << why << "\n";
      return 2;
    }
    const ExplainResult res = explain_trace_json(text);
    if (!res.ok) {
      err << "ftdiag explain: " << res.error << "\n";
      return 2;
    }
    out << res.text;
    return 0;
  }

  if (cmd == "diff") {
    if (argc != 4 && argc != 6) return usage(err);
    double threshold = 20.0;
    if (argc == 6) {
      if (std::string(argv[4]) != "--threshold") return usage(err);
      char* end = nullptr;
      threshold = std::strtod(argv[5], &end);
      if (end == argv[5] || threshold < 0.0) return usage(err);
    }
    std::string ta;
    std::string tb;
    std::string why;
    if (!slurp(argv[2], &ta, &why) || !slurp(argv[3], &tb, &why)) {
      err << "ftdiag diff: " << why << "\n";
      return 2;
    }
    const DiffResult res = diff_json(ta, tb, threshold);
    if (!res.ok) {
      err << "ftdiag diff: " << res.error << "\n";
      return 2;
    }
    out << res.text;
    return res.regressions > 0 ? 1 : 0;
  }

  return usage(err);
}

}  // namespace ftsort::tools
