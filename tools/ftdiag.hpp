// Differential diagnosis CLI (ftdiag): library half, linked by the
// `ftdiag` executable and by tests/test_ftdiag.cpp.
//
// `explain_trace_json` replays the failure evidence an exported Chrome
// trace holds (timeout/kill instant markers, each carrying its paper
// phase) through sim::diagnose, producing the same Diagnosis the
// simulator attaches to RunReport — but offline, from a file. Because
// both paths feed the one builder, `ftdiag explain trace.json` and the
// in-process report can never disagree about the root cause.
//
// `diff_json` compares two metrics/bench JSON exports phase by phase and
// attributes the critical-path delta (comm vs compute where the export
// carries the split), so a perf regression names the paper step that
// paid for it instead of a bare makespan number. It understands both
// shapes the repo emits: sim::write_metrics_json (single run, `"phases"`
// array) and bench_harness (`"scenarios"` array with nested `"phases"`
// objects).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/diagnosis.hpp"

namespace ftsort::tools {

/// Result of reconstructing a Diagnosis from a Chrome-trace JSON export.
struct ExplainResult {
  bool ok = false;     ///< parse succeeded (diagnosis may still be empty)
  std::string error;   ///< first parse problem when !ok
  std::uint64_t timeout_events = 0;  ///< timeout instants found
  std::uint64_t kill_events = 0;     ///< kill instants found
  sim::Diagnosis diagnosis;
  std::string text;  ///< deterministic human-readable report
};

ExplainResult explain_trace_json(const std::string& json);

/// One compared (scenario, phase) pair. `scenario` is empty for the
/// single-run metrics format.
struct PhaseDelta {
  std::string scenario;
  std::string phase;
  double before = 0.0;  ///< critical_time in the first file (µs)
  double after = 0.0;   ///< critical_time in the second file (µs)
  double delta_pct = 0.0;
  bool regression = false;  ///< |delta_pct| beyond the threshold
  std::string attribution;  ///< "comm" / "compute" when the split exists
};

struct DiffResult {
  bool ok = false;
  std::string error;
  double threshold_pct = 0.0;
  std::vector<PhaseDelta> deltas;  ///< every compared phase, in file order
  std::size_t regressions = 0;
  std::string text;  ///< rendered report, one line per delta + summary
};

/// Compare per-phase critical path between two JSON exports. The gate is
/// symmetric: a phase that got ±`threshold_pct` percent slower OR faster
/// is flagged, because an unexplained speedup in a deterministic
/// simulator is as suspicious as a slowdown.
DiffResult diff_json(const std::string& a, const std::string& b,
                     double threshold_pct);

/// One per-cube-dimension traffic delta from `hotspots_diff`.
struct DimDelta {
  std::string scenario;  ///< empty for the single-run metrics format
  int dim = 0;
  double before = 0.0;  ///< key_hops in the first file
  double after = 0.0;   ///< key_hops in the second file
  double delta_pct = 0.0;
  bool regression = false;  ///< |delta_pct| beyond the threshold
};

struct HotspotsResult {
  bool ok = false;
  std::string error;
  double threshold_pct = 0.0;   ///< diff mode only
  std::size_t regressions = 0;  ///< diff mode only
  std::vector<DimDelta> deltas;
  std::string text;  ///< deterministic rendered report
};

/// Single-file report: rank cube dimensions by wire busy time (top
/// `top_k`, all when 0) and attribute communication volume per paper
/// phase. Understands both link-telemetry shapes the repo emits:
/// sim::write_metrics_json (`"links"` block) and bench_harness
/// (`"link_dimensions"` per scenario). Scenarios without link telemetry
/// (kernel micros) are skipped; a document with none at all is an error.
HotspotsResult hotspots_report(const std::string& json, std::size_t top_k);

/// Two-file diff over per-dimension key_hops (plus the per-run total).
/// The gate is symmetric, like diff_json: traffic that moved by more than
/// ±`threshold_pct` percent in either direction on any dimension is a
/// regression — the counters are deterministic, so any unexplained shift
/// means the routing or the algorithm changed.
HotspotsResult hotspots_diff(const std::string& a, const std::string& b,
                             double threshold_pct);

/// One per-r-bucket delta from `campaign_diff`.
struct BucketDelta {
  int r = 0;
  /// P(complete | r) in the two files and its delta in percentage points.
  double prob_before = 0.0;
  double prob_after = 0.0;
  double prob_delta_pts = 0.0;
  /// mean_slowdown in the two files and its relative delta in percent.
  double slowdown_before = 0.0;
  double slowdown_after = 0.0;
  double slowdown_delta_pct = 0.0;
  bool regression = false;  ///< either delta beyond the threshold
};

struct CampaignCliResult {
  bool ok = false;
  std::string error;
  double threshold_pct = 0.0;   ///< diff mode only
  std::size_t regressions = 0;  ///< diff mode only
  bool monotone = true;  ///< report mode: completion curve non-increasing
  std::vector<BucketDelta> deltas;  ///< diff mode only
  std::string text;  ///< deterministic rendered report
};

/// Single-file summary of a schema-v5 campaign JSON block
/// (campaign::write_campaign_json): header, outcome rollup, the per-r
/// reliability/slowdown table, and a monotonicity verdict on the
/// completion curve.
CampaignCliResult campaign_report(const std::string& json);

/// Two-file diff over the per-r reliability curves. The gate is
/// symmetric, like diff_json: a bucket whose completion probability
/// moved by more than ±`threshold_pct` percentage points, or whose mean
/// slowdown moved by more than ±`threshold_pct` percent, in either
/// direction, is a regression — campaigns are deterministic in their
/// seed, so same-spec reports must match exactly (threshold 0 is the
/// default and a meaningful gate).
CampaignCliResult campaign_diff(const std::string& a, const std::string& b,
                                double threshold_pct);

/// One (scenario, mode, build) trend line from `history_trends`.
struct HistoryTrend {
  std::string scenario;
  std::string mode;   ///< "smoke" | "full"
  std::string build;  ///< "release" | "debug"
  std::size_t entries = 0;  ///< history lines contributing a sample
  double baseline = 0.0;    ///< median of the pre-window samples
  double recent = 0.0;      ///< median of the last-k window
  double drift_pct = 0.0;   ///< (recent - baseline) / baseline, percent
  bool regression = false;  ///< |drift_pct| beyond the threshold
  std::string sparkline;    ///< one block glyph per sample, min..max scaled
};

struct HistoryResult {
  bool ok = false;
  std::string error;
  std::string metric;          ///< "makespan" | "wall_ns" | "comparisons"
  std::size_t last_k = 0;
  double threshold_pct = 0.0;
  std::size_t lines = 0;          ///< well-formed history lines parsed
  std::size_t skipped_lines = 0;  ///< corrupt/truncated lines skipped
  std::size_t short_groups = 0;   ///< groups with < 2 samples (no trend)
  std::vector<HistoryTrend> trends;  ///< first-appearance order
  std::size_t regressions = 0;
  std::string text;  ///< deterministic rendered report
};

/// Key-lineage report over a schema-v6 metrics JSON export
/// (sim::write_metrics_json with record_lineage on).
struct LineageCliResult {
  bool ok = false;
  std::string error;
  bool audit_checked = false;  ///< the no-loss/no-dup audit ran
  bool audit_ok = false;       ///< ...and passed
  std::size_t lost = 0;        ///< named lost ids
  std::size_t duplicated = 0;  ///< named duplicated values
  std::string text;            ///< deterministic rendered report
};

/// `key < 0, top_n == 0, !audit_only`: summary (rollup, audit verdict
/// with every lost/duplicated id named, top travelers). `key >= 0`: that
/// id's full record with its custody trail decoded event by event.
/// `top_n > 0`: the top-N travelers by link crossings from the per-key
/// detail. `audit_only`: just the verdict and the named violations.
LineageCliResult lineage_report(const std::string& json, long key,
                                std::size_t top_n, bool audit_only);

/// Trend gate over a bench_harness BENCH_history.jsonl: one appended
/// line per bench run, each carrying per-scenario wall_ns / makespan /
/// comparisons. Samples group by (scenario, mode, build) — smoke and
/// full runs, release and debug builds, must never be compared against
/// each other. Per group the last `last_k` samples (clamped so at least
/// one older sample remains) are summarized by their median and held
/// against the median of everything before the window; the gate is
/// symmetric, like diff_json, because the simulator metrics are
/// deterministic. Corrupt or truncated lines (a crashed bench run, a
/// partial append) are skipped and counted, never fatal.
HistoryResult history_trends(const std::string& jsonl,
                             const std::string& metric, std::size_t last_k,
                             double threshold_pct);

/// One heartbeat row decoded from a watchdog black-box dump.
struct StuckSlot {
  std::string slot;        ///< "node 3", "scheduler", "worker 0", ...
  std::uint64_t beats = 0;
  std::uint64_t age_ms = 0;   ///< wall ms since this slot last advanced
  std::string activity;       ///< decoded phase / trial index / "-"
  bool terminal = false;      ///< slot retired in order (never a suspect)
};

struct StuckResult {
  bool ok = false;
  std::string error;
  std::string origin;  ///< "machine" | "campaign" (who armed the watchdog)
  std::uint64_t trips = 0;        ///< abort-policy trips in the dump
  std::uint64_t near_misses = 0;  ///< record-policy breaches in the dump
  std::vector<StuckSlot> slots;   ///< live slots most-silent-first
  std::string text;  ///< deterministic rendered report
};

/// Decode a watchdog black-box dump (sim::write_watchdog_dump) into a
/// root-cause verdict: the trip header, the stall arithmetic (measured
/// silence vs the configured and effective deadlines), the replayed
/// Diagnosis when the dump carries one, and the full heartbeat table
/// sorted most-silent-first so the culprit slot leads. Terminal slots
/// (threads that retired in order) are listed last and never named as
/// the most-silent suspect.
StuckResult stuck_report(const std::string& json);

/// Full CLI: `ftdiag diff A B [--threshold PCT]`,
/// `ftdiag explain TRACE.json`, `ftdiag hotspots FILE [--top K]`,
/// `ftdiag hotspots A B [--threshold PCT]`,
/// `ftdiag campaign FILE`, `ftdiag campaign A B [--threshold PCT]`,
/// `ftdiag history FILE.jsonl [--metric M] [--last K] [--threshold PCT]`,
/// `ftdiag lineage METRICS.json [--key ID | --top N | --audit]`,
/// `ftdiag stuck DUMP.json` (a watchdog black-box dump), or
/// `ftdiag --version` (the schema table, from util/schema.hpp).
/// Returns the process exit code: 0 = clean, 1 = diff found a
/// regression beyond the threshold (for `lineage`: the custody audit is
/// violated; for `stuck`: the dump records at least one abort trip),
/// 2 = usage or parse error.
int run_cli(int argc, const char* const* argv, std::ostream& out,
            std::ostream& err);

}  // namespace ftsort::tools
